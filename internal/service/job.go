package service

import (
	"fmt"
	"time"

	"github.com/metascreen/metascreen/internal/admission"
	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/cudasim"
	"github.com/metascreen/metascreen/internal/sched"
	"github.com/metascreen/metascreen/internal/tables"
	"github.com/metascreen/metascreen/internal/trace"
)

// JobState is a job's position in its lifecycle.
type JobState string

// Job lifecycle: Queued -> Running -> one of Done / Failed / Cancelled.
// A queued job cancelled before a worker picks it up goes straight from
// Queued to Cancelled, and a queued job whose deadline becomes unmeetable
// before a worker reaches it goes to Shed.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
	StateShed      JobState = "shed"
)

// Terminal reports whether a job in this state will never change again.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled || s == StateShed
}

// TerminalStates lists every terminal state in exposition order.
var TerminalStates = []JobState{StateDone, StateFailed, StateCancelled, StateShed}

// ScreenRequest describes one screening job: which benchmark receptor,
// how large a synthetic ligand library, which metaheuristic, and which
// (simulated) machine runs it. The zero value of every optional field
// means its documented default.
type ScreenRequest struct {
	// Dataset is the benchmark receptor: "2BSM" (default) or "2BXG".
	Dataset string `json:"dataset,omitempty"`
	// Library is the synthetic ligand library size; default 8.
	Library int `json:"library,omitempty"`
	// Spots is the surface-spot cap per ligand job; default 4.
	Spots int `json:"spots,omitempty"`
	// Metaheuristic is one of the paper's "M1".."M4"; default "M3".
	Metaheuristic string `json:"metaheuristic,omitempty"`
	// Scale is the metaheuristic budget scale (1 = paper scale);
	// default 0.02, small enough for interactive latency.
	Scale float64 `json:"scale,omitempty"`
	// Machine selects a simulated multi-GPU platform ("Jupiter" or
	// "Hertz"); empty runs on the multicore host backend.
	Machine string `json:"machine,omitempty"`
	// Mode is the pool partitioning strategy when Machine is set:
	// "homogeneous" (default), "heterogeneous" or "dynamic".
	Mode string `json:"mode,omitempty"`
	// Modeled selects the surrogate scorer (the table harness's Modeled
	// mode) instead of real force-field evaluation.
	Modeled bool `json:"modeled,omitempty"`
	// Seed is the screen's random seed; jobs with equal requests and
	// seeds return identical rankings.
	Seed uint64 `json:"seed"`
	// TimeoutSeconds bounds the job's wall-clock run time; 0 = no limit.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// Priority is the job's admission class: "high", "normal" (default)
	// or "low". Dequeue is weighted-fair across classes (4:2:1) and
	// round-robin across clients within a class.
	Priority string `json:"priority,omitempty"`
	// ClientID groups jobs for fair queueing; empty shares the anonymous
	// bucket. The HTTP layer fills it from the X-Client-ID header when
	// the body leaves it empty.
	ClientID string `json:"client_id,omitempty"`
	// DeadlineSeconds is the job's end-to-end deadline from submission
	// (queue wait included); 0 = none. A deadline the measured queue-wait
	// and run-time estimates say cannot be met is rejected at admission
	// (429) or shed at dequeue, and retry backoff never sleeps past it.
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`
	// Faults injects simulated device faults into a Machine job, in the
	// vsrun -faults DSL ("dev0:fail@2,dev1:transient@0.1"); see
	// cudasim.ParseFaultPlans. Chaos drills and the breaker e2e use it.
	Faults string `json:"faults,omitempty"`
	// Ligands restricts the screen to the named ligands of the synthetic
	// library — a shard of the full Library. Empty screens everything.
	// Per-ligand seed lanes are keyed by ligand name, so a shard's
	// per-ligand results are byte-identical to the same ligands screened
	// as part of the full library; the distributed coordinator relies on
	// this to split one screen across worker nodes and merge the partial
	// rankings back deterministically.
	Ligands []string `json:"ligands,omitempty"`
}

// withDefaults fills zero fields with their documented defaults.
func (r ScreenRequest) withDefaults() ScreenRequest {
	if r.Dataset == "" {
		r.Dataset = "2BSM"
	}
	if r.Library == 0 {
		r.Library = 8
	}
	if r.Spots == 0 {
		r.Spots = 4
	}
	if r.Metaheuristic == "" {
		r.Metaheuristic = "M3"
	}
	if r.Scale == 0 {
		r.Scale = 0.02
	}
	if r.Machine != "" && r.Mode == "" {
		r.Mode = "homogeneous"
	}
	if r.Priority == "" {
		r.Priority = "normal"
	}
	return r
}

// Normalized returns the request with every zero optional field replaced
// by its documented default — the exact request the service would run.
// The distributed coordinator normalizes before sharding so coordinator
// and workers agree on the library.
func (r ScreenRequest) Normalized() ScreenRequest { return r.withDefaults() }

// Validate rejects requests the workers could not run. It is called at
// admission so a bad request fails with 400 at submit time, not with a
// failed job minutes later.
func (r ScreenRequest) Validate() error {
	if _, err := core.DatasetByName(r.Dataset); err != nil {
		return err
	}
	if r.Library < 1 || r.Library > 10000 {
		return fmt.Errorf("service: library size %d out of range [1,10000]", r.Library)
	}
	if r.Spots < 1 || r.Spots > 128 {
		return fmt.Errorf("service: spots %d out of range [1,128]", r.Spots)
	}
	switch r.Metaheuristic {
	case "M1", "M2", "M3", "M4":
	default:
		return fmt.Errorf("service: unknown metaheuristic %q (want M1..M4)", r.Metaheuristic)
	}
	if r.Scale <= 0 || r.Scale > 1 {
		return fmt.Errorf("service: scale %g out of range (0,1]", r.Scale)
	}
	if r.Machine != "" {
		if _, err := tables.MachineByName(r.Machine); err != nil {
			return err
		}
	}
	if _, err := parseMode(r.Mode); err != nil {
		return err
	}
	if r.TimeoutSeconds < 0 {
		return fmt.Errorf("service: negative timeout %g", r.TimeoutSeconds)
	}
	if _, err := admission.ParseClass(r.Priority); err != nil {
		return err
	}
	if r.DeadlineSeconds < 0 {
		return fmt.Errorf("service: negative deadline %g", r.DeadlineSeconds)
	}
	if len(r.Ligands) > 0 {
		valid := make(map[string]bool, r.Library)
		for i := 0; i < r.Library; i++ {
			valid[core.SyntheticName(i)] = true
		}
		seen := make(map[string]bool, len(r.Ligands))
		for _, name := range r.Ligands {
			if !valid[name] {
				return fmt.Errorf("service: ligand %q not in the %d-ligand library", name, r.Library)
			}
			if seen[name] {
				return fmt.Errorf("service: duplicate ligand %q in shard", name)
			}
			seen[name] = true
		}
	}
	if r.Faults != "" {
		if r.Machine == "" {
			return fmt.Errorf("service: faults require a machine (the host backend has no devices)")
		}
		m, err := tables.MachineByName(r.Machine)
		if err != nil {
			return err
		}
		if _, err := cudasim.ParseFaultPlans(r.Faults, len(m.GPUs), r.Seed); err != nil {
			return err
		}
	}
	return nil
}

// parseMode maps the wire mode name to the scheduler's enum.
func parseMode(s string) (sched.Mode, error) {
	switch s {
	case "", "homogeneous":
		return sched.Homogeneous, nil
	case "heterogeneous":
		return sched.Heterogeneous, nil
	case "dynamic":
		return sched.Dynamic, nil
	}
	return 0, fmt.Errorf("service: unknown mode %q (want homogeneous, heterogeneous or dynamic)", s)
}

// backendFactory builds the request's backend factory: the host backend,
// or a pool backend over the requested machine's GPUs.
func (r ScreenRequest) backendFactory() (core.BackendFactory, error) {
	if r.Machine == "" {
		return core.HostBackendFactory(core.HostConfig{Real: !r.Modeled}), nil
	}
	m, err := tables.MachineByName(r.Machine)
	if err != nil {
		return nil, err
	}
	mode, err := parseMode(r.Mode)
	if err != nil {
		return nil, err
	}
	plans, err := cudasim.ParseFaultPlans(r.Faults, len(m.GPUs), r.Seed)
	if err != nil {
		return nil, err
	}
	return core.PoolBackendFactory(core.PoolConfig{
		Specs:  m.GPUs,
		Mode:   mode,
		Real:   !r.Modeled,
		Faults: plans,
	}), nil
}

// Job is one submitted screen. All fields are guarded by the owning
// Service's mutex; handlers only ever see View snapshots.
type Job struct {
	id        string
	state     JobState
	req       ScreenRequest
	submitted time.Time
	started   time.Time
	finished  time.Time
	err       string
	result    *core.ScreenResult
	cancel    func()      // non-nil exactly while running
	attempts  int         // executions so far, retries included
	lastErr   string      // most recent attempt error; kept on eventual success
	idemKey   string      // client idempotency key, "" when none was sent
	cpLigands int         // ligands recorded in the job's last checkpoint snapshot
	restored  *ResultView // result replayed from the journal after a restart

	// Admission state.
	class          admission.Class // parsed from req.Priority
	deadline       time.Time       // submitted + DeadlineSeconds; zero when none
	probe          bool            // this job is the breaker's half-open probe
	deviceLost     bool            // the final attempt lost every device
	degraded       bool            // ran with reduced effort under pressure
	effortFactor   float64         // multiplier applied to the search budget
	effectiveScale float64         // req.Scale after degradation
	cancelRequested bool           // a cancel was issued while running (journaled)

	// rec is the job's span recorder, epoch-pinned to submission time;
	// the whole screening stack appends to it (the recorder has its own
	// locks, so it is deliberately outside the service-mutex contract).
	// Nil only for jobs restored from the journal, until first export.
	rec *trace.Recorder

	// partial accumulates per-ligand results as the running screen
	// completes them (fed from the checkpoint callback), keyed by ligand
	// name. The /partial endpoint serves it so the distributed
	// coordinator can stream a shard's ranking before the shard is done.
	partial map[string]core.LigandRecord

	// rate tracks the job's own completion rate (ligands/second) over
	// checkpoint deltas, reported to coordinators via PartialView so a
	// shard's slowness is visible before poll-to-poll deltas resolve it.
	rate   sched.RateEWMA
	rateAt time.Time
}

// observeRate folds one checkpoint's newly completed ligand count into
// the job's self-reported rate. The first call only anchors the clock —
// a rate needs two checkpoints. Caller holds the service mutex.
func (j *Job) observeRate(fresh int, now time.Time) {
	if j.rateAt.IsZero() {
		j.rateAt = now
		return
	}
	dt := now.Sub(j.rateAt).Seconds()
	if dt <= 0 {
		return
	}
	j.rate.Observe(float64(fresh) / dt)
	j.rateAt = now
}

// addPartial folds newly completed ligand records into the job's partial
// result set. Caller holds the service mutex.
func (j *Job) addPartial(recs map[string]core.LigandRecord) {
	if j.partial == nil {
		j.partial = make(map[string]core.LigandRecord, len(recs))
	}
	for name, rec := range recs {
		if _, ok := j.partial[name]; !ok {
			j.partial[name] = rec
		}
	}
}

// RankEntry is one row of a job's ranking on the wire.
type RankEntry struct {
	Rank   int     `json:"rank"`
	Ligand string  `json:"ligand"`
	Atoms  int     `json:"atoms"`
	Score  float64 `json:"score"`
	Spot   int     `json:"spot"`
}

// ResultView is a finished job's outcome on the wire.
type ResultView struct {
	Ranking          []RankEntry `json:"ranking"`
	SimulatedSeconds float64     `json:"simulated_seconds"`
	Evaluations      int64       `json:"evaluations"`
	DeviceFaults     int64       `json:"device_faults,omitempty"`
	Resplits         int64       `json:"resplits,omitempty"`
	// RankingTotal is the full ranking length; when a response is
	// paginated, Ranking holds only the window starting at RankingOffset
	// and RankingTotal tells clients how far they can page.
	RankingTotal  int `json:"ranking_total,omitempty"`
	RankingOffset int `json:"ranking_offset,omitempty"`
	// WarmupFactors are the warm-up Percent factors measured by the
	// job's backend (heterogeneous pool jobs only), per kernel.
	WarmupFactors map[string][]float64 `json:"warmup_factors,omitempty"`
}

// Paginate clips the ranking to the page window, recording the full
// length in RankingTotal and the window start in RankingOffset. The
// journal always stores the full view; pagination happens per response.
func (rv *ResultView) Paginate(p Page) {
	if rv == nil {
		return
	}
	if rv.RankingTotal == 0 {
		rv.RankingTotal = len(rv.Ranking)
	}
	lo, hi := p.clip(len(rv.Ranking))
	rv.Ranking = rv.Ranking[lo:hi]
	rv.RankingOffset = lo
}

// Paged returns a paginated copy, leaving the receiver untouched — a
// job's ResultView may be shared across requests (journal-restored jobs,
// the coordinator's frozen terminal views), so handlers must never
// Paginate it in place.
func (rv *ResultView) Paged(p Page) *ResultView {
	if rv == nil {
		return nil
	}
	cp := *rv
	cp.Paginate(p)
	return &cp
}

// JobView is a consistent snapshot of a job for JSON responses. Attempts
// and LastError let clients distinguish a retried-then-succeeded job from
// a clean one: a done job with attempts > 1 recovered from transient
// failures, and LastError names the most recent one. CheckpointLigands
// reports resume progress for a durable job (how many ligands its last
// checkpoint snapshot holds); IdempotencyKey echoes the key the job was
// admitted under. The view is also the journal's snapshot record, so every
// field must round-trip through JSON.
type JobView struct {
	ID                string        `json:"id"`
	State             JobState      `json:"state"`
	Request           ScreenRequest `json:"request"`
	SubmittedAt       time.Time     `json:"submitted_at"`
	StartedAt         *time.Time    `json:"started_at,omitempty"`
	FinishedAt        *time.Time    `json:"finished_at,omitempty"`
	Error             string        `json:"error,omitempty"`
	Attempts          int           `json:"attempts,omitempty"`
	LastError         string        `json:"last_error,omitempty"`
	IdempotencyKey    string        `json:"idempotency_key,omitempty"`
	CheckpointLigands int           `json:"checkpoint_ligands,omitempty"`
	// DeadlineAt is the absolute deadline a deadline_seconds request was
	// admitted against.
	DeadlineAt *time.Time `json:"deadline_at,omitempty"`
	// Degraded, EffortFactor and EffectiveScale record graceful
	// degradation: the job ran with its search budget multiplied by
	// EffortFactor (so results are comparable only at EffectiveScale, not
	// the requested scale). Recording it here keeps degradation honest —
	// the service never silently changes what a ranking means.
	Degraded       bool        `json:"degraded,omitempty"`
	EffortFactor   float64     `json:"effort_factor,omitempty"`
	EffectiveScale float64     `json:"effective_scale,omitempty"`
	Result         *ResultView `json:"result,omitempty"`
}

// resultView renders an engine result for the wire.
func resultView(res *core.ScreenResult) *ResultView {
	rv := &ResultView{
		SimulatedSeconds: res.SimulatedSeconds,
		Evaluations:      res.Evaluations,
		DeviceFaults:     res.DeviceFaults,
		Resplits:         res.Resplits,
		RankingTotal:     len(res.Ranking),
		WarmupFactors:    res.WarmupFactors,
	}
	for i, e := range res.Ranking {
		rv.Ranking = append(rv.Ranking, RankEntry{
			Rank:   i + 1,
			Ligand: e.Ligand.Name,
			Atoms:  e.Ligand.NumAtoms(),
			Score:  e.Result.Best.Score,
			Spot:   e.Result.Best.Spot,
		})
	}
	return rv
}

// view snapshots the job. Caller holds the service mutex.
func (j *Job) view() JobView {
	v := JobView{
		ID:                j.id,
		State:             j.state,
		Request:           j.req,
		SubmittedAt:       j.submitted,
		Error:             j.err,
		Attempts:          j.attempts,
		LastError:         j.lastErr,
		IdempotencyKey:    j.idemKey,
		CheckpointLigands: j.cpLigands,
		Degraded:          j.degraded,
		EffortFactor:      j.effortFactor,
		EffectiveScale:    j.effectiveScale,
	}
	if !j.deadline.IsZero() {
		t := j.deadline
		v.DeadlineAt = &t
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	switch {
	case j.result != nil:
		v.Result = resultView(j.result)
	case j.restored != nil:
		// The engine result died with the previous process; the journaled
		// view is the source of truth.
		v.Result = j.restored
	}
	return v
}
