package service

import (
	"os"
	"strings"
	"testing"
	"time"

	"github.com/metascreen/metascreen/internal/admission"
)

// TestMetricsExpositionGolden pins the exact Prometheus text exposition
// for a known sequence of events. The format is API: dashboards and
// alerts depend on these names and label sets.
func TestMetricsExpositionGolden(t *testing.T) {
	m := NewMetrics(2)
	m.Submitted()
	m.Submitted()
	m.Submitted()
	m.Rejected()
	m.WorkerBusy(1)
	m.Finished(StateDone, 40*time.Millisecond)
	m.Finished(StateDone, 700*time.Millisecond)
	m.Finished(StateCancelled, 2*time.Second)
	m.JobTimes(250*time.Millisecond, 500*time.Millisecond)
	m.JobTimes(500*time.Millisecond, 2*time.Second)
	m.GenerationSim(0.25)
	m.GenerationSim(0.5)
	m.GenerationSim(4)
	m.Work(1500, 12.5, 2, 1)
	m.Work(500, 2.5, 1, 0)
	m.JobRetried()
	m.JobRetried()
	m.JobRetried()
	m.WorkerPanic()
	m.JournalAppend(120)
	m.JournalAppend(80)
	m.JournalError()
	m.JournalCompaction()
	m.CheckpointWritten()
	m.CheckpointWritten()
	m.Recovered(7, 2, 13)
	m.Shed("queue_full")
	m.Shed("breaker_open")
	m.Shed("storage_full")
	m.Degraded()
	m.WALIOError("sync")
	m.WALIOError("sync")
	m.WALIOError("dirsync")
	m.JournalSkipped()
	m.CheckpointQuarantined()
	m.CheckpointError()
	m.StorageRecovered()
	m.ClassQueueWait(admission.ClassHigh, 20*time.Millisecond)
	m.ClassQueueWait(admission.ClassNormal, 300*time.Millisecond)

	var b strings.Builder
	st := Stats{
		QueueDepth:      1,
		Running:         1,
		Limit:           2,
		InFlight:        1,
		Breaker:         "half-open",
		QueueByClass:    map[string]int{"normal": 1},
		StorageDegraded: true,
	}
	if err := m.WriteTo(&b, st); err != nil {
		t.Fatal(err)
	}
	if os.Getenv("METASCREEN_REGEN_GOLDEN") != "" {
		os.WriteFile("/tmp/metrics_golden.txt", []byte(b.String()), 0o644)
	}
	want := `# HELP metascreen_jobs_submitted_total Jobs admitted into the queue.
# TYPE metascreen_jobs_submitted_total counter
metascreen_jobs_submitted_total 3
# HELP metascreen_jobs_rejected_total Submissions rejected because the queue was full.
# TYPE metascreen_jobs_rejected_total counter
metascreen_jobs_rejected_total 1
# HELP metascreen_jobs_finished_total Jobs by terminal state.
# TYPE metascreen_jobs_finished_total counter
metascreen_jobs_finished_total{state="done"} 2
metascreen_jobs_finished_total{state="failed"} 0
metascreen_jobs_finished_total{state="cancelled"} 1
metascreen_jobs_finished_total{state="shed"} 0
# HELP metascreen_queue_depth Jobs admitted but not yet claimed by a worker.
# TYPE metascreen_queue_depth gauge
metascreen_queue_depth 1
# HELP metascreen_jobs_running Jobs currently executing.
# TYPE metascreen_jobs_running gauge
metascreen_jobs_running 1
# HELP metascreen_workers Size of the worker pool.
# TYPE metascreen_workers gauge
metascreen_workers 2
# HELP metascreen_workers_busy Workers currently running a job.
# TYPE metascreen_workers_busy gauge
metascreen_workers_busy 1
# HELP metascreen_job_latency_seconds Job latency from submission to terminal state.
# TYPE metascreen_job_latency_seconds histogram
metascreen_job_latency_seconds_bucket{le="0.01"} 0
metascreen_job_latency_seconds_bucket{le="0.05"} 1
metascreen_job_latency_seconds_bucket{le="0.1"} 1
metascreen_job_latency_seconds_bucket{le="0.5"} 1
metascreen_job_latency_seconds_bucket{le="1"} 2
metascreen_job_latency_seconds_bucket{le="5"} 3
metascreen_job_latency_seconds_bucket{le="10"} 3
metascreen_job_latency_seconds_bucket{le="30"} 3
metascreen_job_latency_seconds_bucket{le="60"} 3
metascreen_job_latency_seconds_bucket{le="300"} 3
metascreen_job_latency_seconds_bucket{le="+Inf"} 3
metascreen_job_latency_seconds_sum 2.74
metascreen_job_latency_seconds_count 3
# HELP metascreen_job_queue_seconds Queue wait from submission to worker start.
# TYPE metascreen_job_queue_seconds histogram
metascreen_job_queue_seconds_bucket{le="0.01"} 0
metascreen_job_queue_seconds_bucket{le="0.05"} 0
metascreen_job_queue_seconds_bucket{le="0.1"} 0
metascreen_job_queue_seconds_bucket{le="0.5"} 2
metascreen_job_queue_seconds_bucket{le="1"} 2
metascreen_job_queue_seconds_bucket{le="5"} 2
metascreen_job_queue_seconds_bucket{le="10"} 2
metascreen_job_queue_seconds_bucket{le="30"} 2
metascreen_job_queue_seconds_bucket{le="60"} 2
metascreen_job_queue_seconds_bucket{le="300"} 2
metascreen_job_queue_seconds_bucket{le="+Inf"} 2
metascreen_job_queue_seconds_sum 0.75
metascreen_job_queue_seconds_count 2
# HELP metascreen_job_run_seconds Execution time from worker start to terminal state.
# TYPE metascreen_job_run_seconds histogram
metascreen_job_run_seconds_bucket{le="0.01"} 0
metascreen_job_run_seconds_bucket{le="0.05"} 0
metascreen_job_run_seconds_bucket{le="0.1"} 0
metascreen_job_run_seconds_bucket{le="0.5"} 1
metascreen_job_run_seconds_bucket{le="1"} 1
metascreen_job_run_seconds_bucket{le="5"} 2
metascreen_job_run_seconds_bucket{le="10"} 2
metascreen_job_run_seconds_bucket{le="30"} 2
metascreen_job_run_seconds_bucket{le="60"} 2
metascreen_job_run_seconds_bucket{le="300"} 2
metascreen_job_run_seconds_bucket{le="+Inf"} 2
metascreen_job_run_seconds_sum 2.5
metascreen_job_run_seconds_count 2
# HELP metascreen_generation_sim_seconds Simulated seconds per metaheuristic generation in finished jobs.
# TYPE metascreen_generation_sim_seconds histogram
metascreen_generation_sim_seconds_bucket{le="0.0001"} 0
metascreen_generation_sim_seconds_bucket{le="0.001"} 0
metascreen_generation_sim_seconds_bucket{le="0.01"} 0
metascreen_generation_sim_seconds_bucket{le="0.1"} 0
metascreen_generation_sim_seconds_bucket{le="1"} 2
metascreen_generation_sim_seconds_bucket{le="10"} 3
metascreen_generation_sim_seconds_bucket{le="100"} 3
metascreen_generation_sim_seconds_bucket{le="+Inf"} 3
metascreen_generation_sim_seconds_sum 4.75
metascreen_generation_sim_seconds_count 3
# HELP metascreen_evaluations_total Scoring-function evaluations performed by finished jobs.
# TYPE metascreen_evaluations_total counter
metascreen_evaluations_total 2000
# HELP metascreen_simulated_seconds_total Modeled engine seconds accumulated by finished jobs.
# TYPE metascreen_simulated_seconds_total counter
metascreen_simulated_seconds_total 15
# HELP metascreen_device_faults_total Simulated device fault events absorbed by finished jobs.
# TYPE metascreen_device_faults_total counter
metascreen_device_faults_total 3
# HELP metascreen_resplits_total Mid-run work redistributions after device loss in finished jobs.
# TYPE metascreen_resplits_total counter
metascreen_resplits_total 1
# HELP metascreen_job_retries_total Job executions retried after a transient failure.
# TYPE metascreen_job_retries_total counter
metascreen_job_retries_total 3
# HELP metascreen_worker_panics_total Worker panics recovered while running jobs.
# TYPE metascreen_worker_panics_total counter
metascreen_worker_panics_total 1
# HELP metascreen_journal_records_total Job lifecycle records appended to the journal.
# TYPE metascreen_journal_records_total counter
metascreen_journal_records_total 2
# HELP metascreen_journal_bytes_total Journal record payload bytes appended.
# TYPE metascreen_journal_bytes_total counter
metascreen_journal_bytes_total 200
# HELP metascreen_journal_errors_total Journal append, compaction or replay-decode failures.
# TYPE metascreen_journal_errors_total counter
metascreen_journal_errors_total 1
# HELP metascreen_journal_compactions_total Journal compactions into per-job snapshots.
# TYPE metascreen_journal_compactions_total counter
metascreen_journal_compactions_total 1
# HELP metascreen_checkpoints_written_total Atomic per-job checkpoint snapshots written.
# TYPE metascreen_checkpoints_written_total counter
metascreen_checkpoints_written_total 2
# HELP metascreen_replayed_records_total Journal records applied during boot-time recovery.
# TYPE metascreen_replayed_records_total counter
metascreen_replayed_records_total 7
# HELP metascreen_recovered_jobs_total Interrupted jobs re-enqueued by boot-time recovery.
# TYPE metascreen_recovered_jobs_total counter
metascreen_recovered_jobs_total 2
# HELP metascreen_journal_truncated_bytes_total Torn-tail journal bytes dropped during recovery.
# TYPE metascreen_journal_truncated_bytes_total counter
metascreen_journal_truncated_bytes_total 13
# HELP metascreen_wal_io_errors_total Storage I/O failures absorbed or surfaced by the durability layer, by operation.
# TYPE metascreen_wal_io_errors_total counter
metascreen_wal_io_errors_total{op="dirsync"} 1
metascreen_wal_io_errors_total{op="sync"} 2
# HELP metascreen_journal_skipped_total Journal appends skipped while storage-degraded.
# TYPE metascreen_journal_skipped_total counter
metascreen_journal_skipped_total 1
# HELP metascreen_checkpoints_quarantined_total Corrupt checkpoint snapshots quarantined during recovery.
# TYPE metascreen_checkpoints_quarantined_total counter
metascreen_checkpoints_quarantined_total 1
# HELP metascreen_checkpoint_errors_total Checkpoint snapshot write failures (screen continued).
# TYPE metascreen_checkpoint_errors_total counter
metascreen_checkpoint_errors_total 1
# HELP metascreen_storage_recoveries_total Successful storage recoveries (journaling re-enabled).
# TYPE metascreen_storage_recoveries_total counter
metascreen_storage_recoveries_total 1
# HELP metascreen_storage_degraded Whether the service is in storage-degraded read-only mode.
# TYPE metascreen_storage_degraded gauge
metascreen_storage_degraded 1
# HELP metascreen_jobs_shed_total Overload rejections and culls by reason.
# TYPE metascreen_jobs_shed_total counter
metascreen_jobs_shed_total{reason="queue_full"} 1
metascreen_jobs_shed_total{reason="deadline_admission"} 0
metascreen_jobs_shed_total{reason="deadline_dequeue"} 0
metascreen_jobs_shed_total{reason="deadline_backoff"} 0
metascreen_jobs_shed_total{reason="breaker_open"} 1
metascreen_jobs_shed_total{reason="storage_full"} 1
# HELP metascreen_jobs_degraded_total Jobs run with reduced search effort under pressure.
# TYPE metascreen_jobs_degraded_total counter
metascreen_jobs_degraded_total 1
# HELP metascreen_admission_limit Adaptive concurrency limiter window.
# TYPE metascreen_admission_limit gauge
metascreen_admission_limit 2
# HELP metascreen_admission_inflight Jobs currently holding a concurrency slot.
# TYPE metascreen_admission_inflight gauge
metascreen_admission_inflight 1
# HELP metascreen_breaker_state Device-health circuit state: 0 closed, 1 half-open, 2 open.
# TYPE metascreen_breaker_state gauge
metascreen_breaker_state 1
# HELP metascreen_queue_depth_class Queued jobs by priority class.
# TYPE metascreen_queue_depth_class gauge
metascreen_queue_depth_class{class="high"} 0
metascreen_queue_depth_class{class="normal"} 1
metascreen_queue_depth_class{class="low"} 0
# HELP metascreen_job_class_queue_seconds Queue wait from submission to worker start, by priority class.
# TYPE metascreen_job_class_queue_seconds histogram
metascreen_job_class_queue_seconds_bucket{class="high",le="0.01"} 0
metascreen_job_class_queue_seconds_bucket{class="high",le="0.05"} 1
metascreen_job_class_queue_seconds_bucket{class="high",le="0.1"} 1
metascreen_job_class_queue_seconds_bucket{class="high",le="0.5"} 1
metascreen_job_class_queue_seconds_bucket{class="high",le="1"} 1
metascreen_job_class_queue_seconds_bucket{class="high",le="5"} 1
metascreen_job_class_queue_seconds_bucket{class="high",le="10"} 1
metascreen_job_class_queue_seconds_bucket{class="high",le="30"} 1
metascreen_job_class_queue_seconds_bucket{class="high",le="60"} 1
metascreen_job_class_queue_seconds_bucket{class="high",le="300"} 1
metascreen_job_class_queue_seconds_bucket{class="high",le="+Inf"} 1
metascreen_job_class_queue_seconds_sum{class="high"} 0.02
metascreen_job_class_queue_seconds_count{class="high"} 1
metascreen_job_class_queue_seconds_bucket{class="normal",le="0.01"} 0
metascreen_job_class_queue_seconds_bucket{class="normal",le="0.05"} 0
metascreen_job_class_queue_seconds_bucket{class="normal",le="0.1"} 0
metascreen_job_class_queue_seconds_bucket{class="normal",le="0.5"} 1
metascreen_job_class_queue_seconds_bucket{class="normal",le="1"} 1
metascreen_job_class_queue_seconds_bucket{class="normal",le="5"} 1
metascreen_job_class_queue_seconds_bucket{class="normal",le="10"} 1
metascreen_job_class_queue_seconds_bucket{class="normal",le="30"} 1
metascreen_job_class_queue_seconds_bucket{class="normal",le="60"} 1
metascreen_job_class_queue_seconds_bucket{class="normal",le="300"} 1
metascreen_job_class_queue_seconds_bucket{class="normal",le="+Inf"} 1
metascreen_job_class_queue_seconds_sum{class="normal"} 0.3
metascreen_job_class_queue_seconds_count{class="normal"} 1
metascreen_job_class_queue_seconds_bucket{class="low",le="0.01"} 0
metascreen_job_class_queue_seconds_bucket{class="low",le="0.05"} 0
metascreen_job_class_queue_seconds_bucket{class="low",le="0.1"} 0
metascreen_job_class_queue_seconds_bucket{class="low",le="0.5"} 0
metascreen_job_class_queue_seconds_bucket{class="low",le="1"} 0
metascreen_job_class_queue_seconds_bucket{class="low",le="5"} 0
metascreen_job_class_queue_seconds_bucket{class="low",le="10"} 0
metascreen_job_class_queue_seconds_bucket{class="low",le="30"} 0
metascreen_job_class_queue_seconds_bucket{class="low",le="60"} 0
metascreen_job_class_queue_seconds_bucket{class="low",le="300"} 0
metascreen_job_class_queue_seconds_bucket{class="low",le="+Inf"} 0
metascreen_job_class_queue_seconds_sum{class="low"} 0
metascreen_job_class_queue_seconds_count{class="low"} 0
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestMetricsEmpty(t *testing.T) {
	m := NewMetrics(1)
	var b strings.Builder
	if err := m.WriteTo(&b, Stats{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"metascreen_jobs_submitted_total 0",
		`metascreen_job_latency_seconds_bucket{le="+Inf"} 0`,
		"metascreen_evaluations_total 0",
		`metascreen_jobs_shed_total{reason="queue_full"} 0`,
		"metascreen_jobs_degraded_total 0",
		"metascreen_breaker_state 0",
		`metascreen_queue_depth_class{class="low"} 0`,
		`metascreen_job_class_queue_seconds_count{class="high"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in empty exposition", want)
		}
	}
}
