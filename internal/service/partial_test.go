package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
)

// Tests for the distributed-screening groundwork on the single-node
// service: ranking pagination, the /partial streaming endpoint, the
// /readyz probe, and the Ligands shard contract (a shard's per-ligand
// results are byte-identical to the same ligands inside a full run).

func TestParsePage(t *testing.T) {
	cases := []struct {
		query   string
		want    Page
		wantErr bool
	}{
		{"", Page{Limit: DefaultRankingLimit}, false},
		{"limit=5", Page{Limit: 5}, false},
		{"limit=5&offset=3", Page{Limit: 5, Offset: 3}, false},
		{"limit=999999", Page{Limit: MaxRankingLimit}, false},
		{"limit=0", Page{}, true},
		{"limit=-2", Page{}, true},
		{"limit=abc", Page{}, true},
		{"offset=-1", Page{}, true},
		{"offset=x", Page{}, true},
	}
	for _, tc := range cases {
		q, _ := url.ParseQuery(tc.query)
		got, err := ParsePage(q)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParsePage(%q) accepted", tc.query)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePage(%q): %v", tc.query, err)
		} else if got != tc.want {
			t.Errorf("ParsePage(%q) = %+v, want %+v", tc.query, got, tc.want)
		}
	}
}

func TestResultViewPaginate(t *testing.T) {
	mk := func() *ResultView {
		rv := &ResultView{}
		for i := 0; i < 10; i++ {
			rv.Ranking = append(rv.Ranking, RankEntry{Rank: i + 1})
		}
		return rv
	}
	rv := mk()
	rv.Paginate(Page{Limit: 3, Offset: 4})
	if rv.RankingTotal != 10 || rv.RankingOffset != 4 || len(rv.Ranking) != 3 || rv.Ranking[0].Rank != 5 {
		t.Fatalf("window = total %d offset %d len %d first %d",
			rv.RankingTotal, rv.RankingOffset, len(rv.Ranking), rv.Ranking[0].Rank)
	}
	rv = mk()
	rv.Paginate(Page{Limit: 5, Offset: 20})
	if len(rv.Ranking) != 0 || rv.RankingOffset != 10 {
		t.Fatalf("past-the-end window kept %d entries at offset %d", len(rv.Ranking), rv.RankingOffset)
	}
	// A nil result (queued job) must not panic.
	var nilRV *ResultView
	nilRV.Paginate(DefaultPage())
}

// realService boots a service with the real screening engine.
func realService(t *testing.T, cfg Config) *Service {
	t.Helper()
	return newTestService(t, cfg, nil)
}

var partialRequest = ScreenRequest{
	Dataset: "2BSM", Library: 6, Spots: 2, Metaheuristic: "M3", Scale: 0.02, Seed: 7,
}

// TestRankingPaginationHTTP: GET /v1/screens/{id} windows the ranking
// with limit/offset and reports the full length; bad params are 400.
func TestRankingPaginationHTTP(t *testing.T) {
	s := realService(t, Config{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := srv.Client()

	v := submitAndWait(t, c, srv.URL, partialRequest)
	if v.State != StateDone {
		t.Fatalf("screen ended %s: %s", v.State, v.Error)
	}

	var page JobView
	if code := doJSON(t, c, "GET", srv.URL+"/v1/screens/"+v.ID+"?limit=2&offset=4", nil, &page); code != http.StatusOK {
		t.Fatalf("paginated get status %d", code)
	}
	if page.Result.RankingTotal != 6 || page.Result.RankingOffset != 4 || len(page.Result.Ranking) != 2 {
		t.Fatalf("window: total %d offset %d len %d",
			page.Result.RankingTotal, page.Result.RankingOffset, len(page.Result.Ranking))
	}
	if page.Result.Ranking[0].Rank != 5 {
		t.Fatalf("first windowed rank %d, want 5", page.Result.Ranking[0].Rank)
	}
	var errBody map[string]string
	if code := doJSON(t, c, "GET", srv.URL+"/v1/screens/"+v.ID+"?limit=bogus", nil, &errBody); code != http.StatusBadRequest {
		t.Fatalf("bad limit status %d", code)
	}
}

// TestPartialEndpoint: a finished job serves its complete per-ligand set
// with work totals that reproduce the job's aggregates exactly.
func TestPartialEndpoint(t *testing.T) {
	s := realService(t, Config{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := srv.Client()

	v := submitAndWait(t, c, srv.URL, partialRequest)
	if v.State != StateDone {
		t.Fatalf("screen ended %s: %s", v.State, v.Error)
	}

	var pv PartialView
	if code := doJSON(t, c, "GET", srv.URL+"/v1/screens/"+v.ID+"/partial", nil, &pv); code != http.StatusOK {
		t.Fatalf("partial status %d", code)
	}
	if pv.Completed != 6 || pv.Total != 6 || len(pv.Entries) != 6 {
		t.Fatalf("partial completed %d/%d with %d entries", pv.Completed, pv.Total, len(pv.Entries))
	}
	var sim float64
	var evals int64
	for i, e := range pv.Entries {
		if e.Rank != i+1 {
			t.Errorf("entry %d has rank %d", i, e.Rank)
		}
		if e.Ligand != v.Result.Ranking[i].Ligand || e.Score != v.Result.Ranking[i].Score {
			t.Errorf("entry %d (%s, %g) != ranking row (%s, %g)",
				i, e.Ligand, e.Score, v.Result.Ranking[i].Ligand, v.Result.Ranking[i].Score)
		}
		sim += e.SimSeconds
		evals += e.Evaluations
	}
	// Summed in rank order this may differ in float rounding from the
	// job's library-order total, but evaluations are integral.
	if evals != v.Result.Evaluations {
		t.Errorf("per-ligand evaluations sum %d != job total %d", evals, v.Result.Evaluations)
	}
	if sim == 0 {
		t.Error("per-ligand sim_seconds all zero")
	}

	// Pagination applies to partials too.
	if code := doJSON(t, c, "GET", srv.URL+"/v1/screens/"+v.ID+"/partial?limit=2&offset=2", nil, &pv); code != http.StatusOK {
		t.Fatalf("paginated partial status %d", code)
	}
	if pv.EntriesTotal != 6 || pv.EntriesOffset != 2 || len(pv.Entries) != 2 || pv.Entries[0].Rank != 3 {
		t.Fatalf("partial window: total %d offset %d len %d first rank %d",
			pv.EntriesTotal, pv.EntriesOffset, len(pv.Entries), pv.Entries[0].Rank)
	}

	if code := doJSON(t, c, "GET", srv.URL+"/v1/screens/nope/partial", nil, &pv); code != http.StatusNotFound {
		t.Fatalf("unknown job partial status %d", code)
	}
}

// TestReadyz: ready after boot, 503 once draining.
func TestReadyz(t *testing.T) {
	run, release := blockingRunner()
	s := newTestService(t, Config{Workers: 1}, run)
	defer release()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := srv.Client()

	var body map[string]any
	if code := doJSON(t, c, "GET", srv.URL+"/readyz", nil, &body); code != http.StatusOK {
		t.Fatalf("fresh service readyz %d", code)
	}
	if ready, _ := body["ready"].(bool); !ready {
		t.Fatal("fresh service not ready")
	}
	go s.Shutdown(context.Background())
	waitFor(t, func() bool {
		return doJSON(t, c, "GET", srv.URL+"/readyz", nil, &body) == http.StatusServiceUnavailable
	})
}

// TestLigandShardsMatchFullRun: the determinism contract the distributed
// coordinator is built on — screening a subset of the library via
// Ligands produces per-ligand scores identical to the full run, so two
// disjoint shards merge back into exactly the full ranking.
func TestLigandShardsMatchFullRun(t *testing.T) {
	s := realService(t, Config{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := srv.Client()

	full := submitAndWait(t, c, srv.URL, partialRequest)
	if full.State != StateDone {
		t.Fatalf("full screen ended %s: %s", full.State, full.Error)
	}

	shardA := partialRequest
	shardA.Ligands = []string{"LIG-000", "LIG-002", "LIG-004"}
	shardB := partialRequest
	shardB.Ligands = []string{"LIG-001", "LIG-003", "LIG-005"}

	merged := make(map[string]RankEntry)
	for _, req := range []ScreenRequest{shardA, shardB} {
		v := submitAndWait(t, c, srv.URL, req)
		if v.State != StateDone {
			t.Fatalf("shard ended %s: %s", v.State, v.Error)
		}
		if len(v.Result.Ranking) != 3 {
			t.Fatalf("shard ranked %d ligands, want 3", len(v.Result.Ranking))
		}
		for _, e := range v.Result.Ranking {
			merged[e.Ligand] = e
		}
	}
	for _, want := range full.Result.Ranking {
		got, ok := merged[want.Ligand]
		if !ok {
			t.Fatalf("ligand %s missing from merged shards", want.Ligand)
		}
		if got.Score != want.Score || got.Spot != want.Spot || got.Atoms != want.Atoms {
			t.Errorf("ligand %s: shard (%g, spot %d) != full run (%g, spot %d)",
				want.Ligand, got.Score, got.Spot, want.Score, want.Spot)
		}
	}

	// Invalid shards are rejected at admission.
	bad := partialRequest
	bad.Ligands = []string{"LIG-099"}
	var errBody map[string]string
	if code := doJSON(t, c, "POST", srv.URL+"/v1/screens", bad, &errBody); code != http.StatusBadRequest {
		t.Fatalf("out-of-library ligand admitted with status %d", code)
	}
	bad.Ligands = []string{"LIG-001", "LIG-001"}
	if code := doJSON(t, c, "POST", srv.URL+"/v1/screens", bad, &errBody); code != http.StatusBadRequest {
		t.Fatalf("duplicate ligand admitted with status %d", code)
	}
}
