package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/metascreen/metascreen/internal/admission"
	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/sched"
)

// The overload-protection contract at the service layer: a saturating
// burst never wedges or leaks, deadlines are enforced at admission,
// dequeue and retry backoff, the device-health breaker opens and
// recovers, degradation is recorded on the job, and a journaled cancel
// survives replay.

// TestOverloadBurst saturates a 2-worker service with 200 concurrent
// submissions across priorities and clients (run with -race). Every
// accepted job must reach a terminal state, every rejection must be a
// typed ShedError, and the goroutine count must settle after shutdown —
// no worker, limiter or queue goroutine may leak.
func TestOverloadBurst(t *testing.T) {
	before := runtime.NumGoroutine()
	run := func(ctx context.Context, id string, req ScreenRequest) (*core.ScreenResult, error) {
		return stubResult(), nil
	}
	s, err := New(Config{Workers: 2, QueueDepth: 32, Admission: admission.Config{TargetLatency: 50 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	s.run = run

	priorities := []string{"high", "normal", "low"}
	var (
		wg       sync.WaitGroup
		accepted sync.Map
		shed     atomic.Int64
	)
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := s.Submit(ScreenRequest{
				Seed:     uint64(i),
				Priority: priorities[i%len(priorities)],
				ClientID: fmt.Sprintf("client-%d", i%4),
			})
			if err != nil {
				var se *ShedError
				if !errors.As(err, &se) {
					t.Errorf("submit %d: untyped rejection %v", i, err)
				} else if se.RetryAfter <= 0 || se.Limit != 32 {
					t.Errorf("submit %d: shed error %+v lacks retry/limit", i, se)
				}
				shed.Add(1)
				return
			}
			accepted.Store(v.ID, true)
		}(i)
	}
	wg.Wait()

	accepted.Range(func(k, _ any) bool {
		id := k.(string)
		waitFor(t, func() bool {
			v, err := s.Get(id)
			return err == nil && v.State.Terminal()
		})
		return true
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The burst may have been fully absorbed (queue bound 32 but workers
	// drain concurrently); when it was not, rejections must be counted.
	if n := shed.Load(); n > 0 {
		if s.metrics.ShedCounts()["queue_full"] == 0 {
			t.Error("queue_full rejections not counted in metrics")
		}
	}
	waitFor(t, func() bool { return runtime.NumGoroutine() <= before+5 })
}

// TestDeadlineAdmission trains the controller's run-time estimate and
// checks an unmeetable deadline_seconds request is rejected up front with
// a typed, Retry-After-carrying error, while a generous deadline is
// admitted and stamped on the view.
func TestDeadlineAdmission(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueDepth: 4}, func(ctx context.Context, id string, req ScreenRequest) (*core.ScreenResult, error) {
		return stubResult(), nil
	})
	// White-box: pin the EWMAs so the decision is deterministic.
	s.ctrl.ObserveQueueWait(2 * time.Second)
	s.ctrl.ObserveRun(2 * time.Second)

	_, err := s.Submit(ScreenRequest{Seed: 1, DeadlineSeconds: 0.5})
	if !errors.Is(err, ErrDeadlineUnmeetable) {
		t.Fatalf("got %v, want ErrDeadlineUnmeetable", err)
	}
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != "deadline_admission" || se.RetryAfter <= 0 {
		t.Fatalf("shed error %+v", err)
	}

	v, err := s.Submit(ScreenRequest{Seed: 2, DeadlineSeconds: 60})
	if err != nil {
		t.Fatalf("generous deadline rejected: %v", err)
	}
	if v.DeadlineAt == nil {
		t.Error("admitted deadline job has no DeadlineAt on its view")
	}
	if got := s.metrics.ShedCounts()["deadline_admission"]; got != 1 {
		t.Errorf("deadline_admission shed count %d, want 1", got)
	}
}

// TestDeadlineDequeueCull checks a job whose deadline became unmeetable
// while it waited in the queue is shed at dequeue instead of burning a
// worker, and finishes in the terminal "shed" state.
func TestDeadlineDequeueCull(t *testing.T) {
	run, release := blockingRunner()
	s := newTestService(t, Config{Workers: 1, QueueDepth: 4}, run)

	// Occupy the only worker, then queue a job with a short deadline.
	blocker, err := s.Submit(ScreenRequest{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		v, _ := s.Get(blocker.ID)
		return v.State == StateRunning
	})
	doomed, err := s.Submit(ScreenRequest{Seed: 2, DeadlineSeconds: 1})
	if err != nil {
		t.Fatalf("short-deadline job rejected at admission: %v", err)
	}
	// While it waits, the run-time estimate grows past its deadline.
	s.ctrl.ObserveRun(30 * time.Second)
	release()

	waitFor(t, func() bool {
		v, _ := s.Get(doomed.ID)
		return v.State.Terminal()
	})
	v, _ := s.Get(doomed.ID)
	if v.State != StateShed {
		t.Fatalf("doomed job finished as %s (%s), want shed", v.State, v.Error)
	}
	if got := s.metrics.ShedCounts()["deadline_dequeue"]; got != 1 {
		t.Errorf("deadline_dequeue shed count %d, want 1", got)
	}
}

// TestBreakerOpensAndRecovers drives the device-health circuit with a
// stub that loses every device: consecutive machine-job failures open it,
// open rejects machine jobs (host jobs still pass), the cooldown admits a
// single probe, and a successful probe closes the circuit again.
func TestBreakerOpensAndRecovers(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	run := func(ctx context.Context, id string, req ScreenRequest) (*core.ScreenResult, error) {
		if req.Machine != "" && fail.Load() {
			return nil, fmt.Errorf("resplit exhausted: %w", sched.ErrAllDevicesLost)
		}
		return stubResult(), nil
	}
	clock := struct {
		mu  sync.Mutex
		now time.Time
	}{now: time.Unix(1_700_000_000, 0)}
	tick := func() time.Time {
		clock.mu.Lock()
		defer clock.mu.Unlock()
		// Advance a little on every read so EWMAs see non-zero durations.
		clock.now = clock.now.Add(time.Millisecond)
		return clock.now
	}
	s := newTestService(t, Config{
		Workers: 1, QueueDepth: 8, MaxAttempts: 1,
		Clock:     tick,
		Admission: admission.Config{BreakerThreshold: 2, BreakerCooldown: time.Minute},
	}, run)

	machineReq := func(seed uint64) ScreenRequest {
		return ScreenRequest{Seed: seed, Machine: "Hertz", Mode: "heterogeneous", Modeled: true}
	}
	for i := uint64(1); i <= 2; i++ {
		v, err := s.Submit(machineReq(i))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		waitFor(t, func() bool {
			got, _ := s.Get(v.ID)
			return got.State.Terminal()
		})
	}
	if st := s.ctrl.Breaker.State(); st != admission.BreakerOpen {
		t.Fatalf("breaker %s after %d device-loss failures, want open", st, 2)
	}

	// Open circuit: machine jobs are rejected 503-style, host jobs pass.
	_, err := s.Submit(machineReq(3))
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("got %v, want ErrBreakerOpen", err)
	}
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != "breaker_open" || se.RetryAfter <= 0 {
		t.Fatalf("breaker shed error %+v", err)
	}
	if _, err := s.Submit(ScreenRequest{Seed: 4}); err != nil {
		t.Fatalf("host job rejected while breaker open: %v", err)
	}
	if st := s.Stats(); st.Breaker != "open" {
		t.Errorf("stats breaker %q, want open", st.Breaker)
	}

	// After the cooldown the circuit half-opens; the healed probe closes it.
	clock.mu.Lock()
	clock.now = clock.now.Add(2 * time.Minute)
	clock.mu.Unlock()
	fail.Store(false)
	probe, err := s.Submit(machineReq(5))
	if err != nil {
		t.Fatalf("probe rejected after cooldown: %v", err)
	}
	waitFor(t, func() bool {
		got, _ := s.Get(probe.ID)
		return got.State.Terminal()
	})
	if st := s.ctrl.Breaker.State(); st != admission.BreakerClosed {
		t.Fatalf("breaker %s after successful probe, want closed", st)
	}
	if v, err := s.Submit(machineReq(6)); err != nil {
		t.Fatalf("machine job rejected after recovery: %v", err)
	} else {
		waitFor(t, func() bool {
			got, _ := s.Get(v.ID)
			return got.State == StateDone
		})
	}
}

// TestDegradationRecordedOnView checks a job started under queue pressure
// runs at reduced effort and that the reduction — factor and effective
// scale — is recorded on its view rather than applied silently.
func TestDegradationRecordedOnView(t *testing.T) {
	var gotScale atomic.Value
	run, release := blockingRunner()
	wrapped := func(ctx context.Context, id string, req ScreenRequest) (*core.ScreenResult, error) {
		gotScale.Store(req.Scale)
		return run(ctx, id, req)
	}
	s := newTestService(t, Config{
		Workers: 1, QueueDepth: 4,
		Admission: admission.Config{DegradeAt: 0.5, DegradeFactor: 0.5},
	}, wrapped)

	blocker, err := s.Submit(ScreenRequest{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		v, _ := s.Get(blocker.ID)
		return v.State == StateRunning
	})
	var queued []JobView
	for i := uint64(2); i <= 4; i++ {
		v, err := s.Submit(ScreenRequest{Seed: i})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, v)
	}
	release()
	waitFor(t, func() bool {
		v, _ := s.Get(queued[0].ID)
		return v.State.Terminal()
	})

	// The first queued job popped with 2 of 4 slots still full: fill 0.5
	// crosses DegradeAt, so it ran at half scale and says so.
	v, _ := s.Get(queued[0].ID)
	if !v.Degraded || v.EffortFactor != 0.5 {
		t.Fatalf("view %+v: want degraded at factor 0.5", v)
	}
	want := v.Request.Scale * 0.5
	if v.EffectiveScale != want {
		t.Errorf("effective scale %g, want %g", v.EffectiveScale, want)
	}
	if sc, _ := gotScale.Load().(float64); sc != want && sc != v.Request.Scale {
		t.Errorf("runner saw scale %g, want %g (degraded) or %g (blocker)", sc, want, v.Request.Scale)
	}
	if s.metrics.ShedCounts()["queue_full"] != 0 {
		t.Error("degradation test unexpectedly hit queue_full")
	}
}

// TestRetryBackoffRespectsDeadline checks the retry loop fails a job
// immediately when the computed backoff would sleep past its deadline,
// instead of sleeping and then failing anyway.
func TestRetryBackoffRespectsDeadline(t *testing.T) {
	attempts := atomic.Int64{}
	run := func(ctx context.Context, id string, req ScreenRequest) (*core.ScreenResult, error) {
		attempts.Add(1)
		return nil, transientTestErr{}
	}
	s := newTestService(t, Config{
		Workers: 1, QueueDepth: 4, MaxAttempts: 5,
		RetryBaseDelay: 30 * time.Second, // any backoff overshoots the deadline
	}, run)

	v, err := s.Submit(ScreenRequest{Seed: 1, DeadlineSeconds: 5})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	waitFor(t, func() bool {
		got, _ := s.Get(v.ID)
		return got.State.Terminal()
	})
	got, _ := s.Get(v.ID)
	if got.State != StateFailed {
		t.Fatalf("job finished as %s, want failed", got.State)
	}
	if n := attempts.Load(); n != 1 {
		t.Errorf("runner ran %d times, want 1 (backoff skipped)", n)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("job took %v; the backoff was not skipped", elapsed)
	}
	if s.metrics.ShedCounts()["deadline_backoff"] != 1 {
		t.Error("deadline_backoff not counted")
	}
}

// transientTestErr is retryable by the pool's classification.
type transientTestErr struct{}

func (transientTestErr) Error() string   { return "synthetic transient failure" }
func (transientTestErr) Transient() bool { return true }

// TestCancelSurvivesReplay kills the process between a running job's
// journaled cancel and its terminal record, then reboots over the data
// dir: replay must honour the cancel intent and finish the job cancelled
// instead of resurrecting it.
func TestCancelSurvivesReplay(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	run := func(ctx context.Context, id string, req ScreenRequest) (*core.ScreenResult, error) {
		<-ctx.Done() // wait for the cancel signal...
		<-gate       // ...then hold the terminal transition until "killed"
		return nil, ctx.Err()
	}
	s, err := New(Config{Workers: 1, QueueDepth: 4, DataDir: dir, MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.run = run

	v, err := s.Submit(ScreenRequest{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		got, _ := s.Get(v.ID)
		return got.State == StateRunning
	})
	if _, err := s.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	dead := make(chan struct{})
	go func() { s.crashForTest(); close(dead) }()
	waitFor(t, func() bool { return s.Stats().Draining })
	close(gate)
	<-dead

	s2, err := New(Config{Workers: 1, QueueDepth: 4, DataDir: dir, MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s2.Shutdown(ctx)
	})
	got, err := s2.Get(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("replayed job state %s, want cancelled (cancel intent lost)", got.State)
	}
	if s2.Recovery().RecoveredJobs != 0 {
		t.Errorf("cancelled job was re-enqueued: %+v", s2.Recovery())
	}
}

// TestCancelAliasRoute checks DELETE /jobs/{id} cancels like the
// canonical /v1/screens route.
func TestCancelAliasRoute(t *testing.T) {
	run, release := blockingRunner()
	defer release()
	s := newTestService(t, Config{Workers: 1, QueueDepth: 4}, run)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	v, err := s.Submit(ScreenRequest{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		got, _ := s.Get(v.ID)
		return got.State == StateRunning
	})
	req, _ := http.NewRequest("DELETE", srv.URL+"/jobs/"+v.ID, nil)
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE /jobs/{id} status %d, want 202", resp.StatusCode)
	}
	waitFor(t, func() bool {
		got, _ := s.Get(v.ID)
		return got.State == StateCancelled
	})
}
