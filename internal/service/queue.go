package service

import "errors"

// Admission and lookup errors. Handlers map these to HTTP statuses
// (ErrQueueFull -> 429, ErrDraining -> 503, ErrNotFound -> 404,
// ErrTerminal -> 409), and embedders of the Service API match them with
// errors.Is.
var (
	// ErrQueueFull is returned when admission would exceed the queue
	// bound. Backpressure is the contract: the service never buffers an
	// unbounded backlog in memory; callers retry with backoff.
	ErrQueueFull = errors.New("service: queue full")
	// ErrDraining is returned for submissions after shutdown began.
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrNotFound is returned for an unknown job ID.
	ErrNotFound = errors.New("service: no such job")
	// ErrTerminal is returned when cancelling a job that already
	// finished.
	ErrTerminal = errors.New("service: job already finished")
)

// jobQueue is the bounded FIFO between admission and the worker pool. It
// is deliberately a thin wrapper over a buffered channel: the channel is
// both the queue storage and the workers' wait primitive, and the bound
// is the admission-control limit. Pushes happen under the Service mutex
// so tryPush never races close.
type jobQueue struct {
	ch chan *Job
}

func newJobQueue(depth int) *jobQueue {
	return &jobQueue{ch: make(chan *Job, depth)}
}

// tryPush enqueues without blocking; a full queue is an admission error.
func (q *jobQueue) tryPush(j *Job) error {
	select {
	case q.ch <- j:
		return nil
	default:
		return ErrQueueFull
	}
}

// depth is the number of queued jobs not yet claimed by a worker.
func (q *jobQueue) depth() int { return len(q.ch) }

// close ends intake; workers drain the remainder and exit.
func (q *jobQueue) close() { close(q.ch) }
