package service

import (
	"errors"
	"time"

	"github.com/metascreen/metascreen/internal/admission"
)

// Admission and lookup errors. Handlers map these to HTTP statuses
// (ErrQueueFull / ErrDeadlineUnmeetable -> 429, ErrDraining /
// ErrBreakerOpen -> 503, ErrNotFound -> 404, ErrTerminal -> 409), and
// embedders of the Service API match them with errors.Is.
var (
	// ErrQueueFull is returned when admission would exceed the queue
	// bound. Backpressure is the contract: the service never buffers an
	// unbounded backlog in memory; callers retry with backoff.
	ErrQueueFull = errors.New("service: queue full")
	// ErrDraining is returned for submissions after shutdown began.
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrNotFound is returned for an unknown job ID.
	ErrNotFound = errors.New("service: no such job")
	// ErrTerminal is returned when cancelling a job that already
	// finished.
	ErrTerminal = errors.New("service: job already finished")
	// ErrDeadlineUnmeetable is returned when the measured queue wait and
	// run time say the request's deadline cannot be met.
	ErrDeadlineUnmeetable = errors.New("service: deadline cannot be met under current load")
	// ErrBreakerOpen is returned while the device-health circuit breaker
	// is rejecting machine jobs.
	ErrBreakerOpen = errors.New("service: device pool circuit breaker open")
	// ErrStorageFull is returned while the service is in storage-degraded
	// read-only mode (full or failing journal disk): submissions would be
	// acknowledged without being journaled. Handlers map it to HTTP 507
	// with a Retry-After; reads keep serving.
	ErrStorageFull = errors.New("service: journal storage full or failing, not accepting jobs")
)

// ShedError wraps an overload rejection with what the client needs to
// back off intelligently: the reason label (matching the
// metascreen_jobs_shed_total metric), a computed Retry-After, and the
// queue state at rejection time. errors.Is still matches the wrapped
// sentinel.
type ShedError struct {
	Err        error
	Reason     string
	RetryAfter time.Duration
	QueueDepth int
	Limit      int
}

func (e *ShedError) Error() string { return e.Err.Error() }
func (e *ShedError) Unwrap() error { return e.Err }

// jobQueue is the bounded priority/weighted-fair queue between admission
// and the worker pool (admission.FairQueue under the service's
// sentinels). Pushes happen under the Service mutex so tryPush never
// races close; pops block in the workers.
type jobQueue struct {
	q *admission.FairQueue[*Job]
}

func newJobQueue(depth int) *jobQueue {
	return &jobQueue{q: admission.NewFairQueue[*Job](depth)}
}

// tryPush enqueues without blocking under the job's priority class and
// client; a full queue is an admission error.
func (q *jobQueue) tryPush(j *Job) error {
	switch err := q.q.Push(j, j.class, j.req.ClientID); err {
	case nil:
		return nil
	case admission.ErrFull:
		return ErrQueueFull
	case admission.ErrClosed:
		return ErrDraining
	default:
		return err
	}
}

// pop blocks for the next job by fair order; ok=false means the queue
// closed and drained.
func (q *jobQueue) pop() (*Job, bool) { return q.q.Pop() }

// depth is the number of queued jobs not yet claimed by a worker.
func (q *jobQueue) depth() int { return q.q.Len() }

// depthClass is one priority class's share of the depth.
func (q *jobQueue) depthClass(c admission.Class) int { return q.q.LenClass(c) }

// close ends intake; workers drain the remainder and exit.
func (q *jobQueue) close() { q.q.Close() }
