package service

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"strconv"
)

// The HTTP layer: a stdlib-only JSON API over the Service.
//
//	POST   /v1/screens            submit a ScreenRequest     -> 202 JobView
//	                              (Idempotency-Key header: resubmitting an
//	                              admitted key returns the original job, 200)
//	GET    /v1/screens            list jobs                  -> 200 [JobView]
//	GET    /v1/screens/{id}       job status + ranking       -> 200 JobView
//	                              (?limit=&offset= window the ranking;
//	                              no limit caps it at DefaultRankingLimit,
//	                              ranking_total reports the full length)
//	GET    /v1/screens/{id}/partial  completed-ligand ranking so far
//	                              -> 200 PartialView (same limit/offset
//	                              params; the distributed coordinator
//	                              streams shard merges from it)
//	GET    /v1/screens/{id}/trace Chrome-trace-format job timeline -> 200
//	                              (also served as GET /jobs/{id}/trace;
//	                              load the payload in Perfetto or
//	                              chrome://tracing)
//	DELETE /v1/screens/{id}       cancel                     -> 202 JobView
//	                              (also served as DELETE /jobs/{id})
//	GET    /healthz               liveness                   -> 200 Stats
//	GET    /readyz                readiness (journal replayed, pool up,
//	                              not draining) -> 200 / 503
//	GET    /metrics               Prometheus text exposition -> 200
//
// Errors are {"error": "..."} with ErrQueueFull / ErrDeadlineUnmeetable
// -> 429, ErrDraining / ErrBreakerOpen -> 503, ErrNotFound -> 404,
// ErrTerminal -> 409, bad requests -> 400. Overload rejections (ShedError)
// additionally carry a Retry-After header and a structured body with
// reason, retry_after_seconds, queue_depth and limit.

// EpochHeader carries the distributed coordinator's fencing epoch on
// shard requests. Workers echo it verbatim so the coordinator's client
// can verify a response answers the epoch it asked under — a stale or
// replayed response from before a worker was declared dead and revived
// fails the echo check and is never merged.
const EpochHeader = "X-Metascreen-Epoch"

// Handler returns the service's HTTP API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/screens", s.handleSubmit)
	mux.HandleFunc("GET /v1/screens", s.handleList)
	mux.HandleFunc("GET /v1/screens/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/screens/{id}/partial", s.handlePartial)
	mux.HandleFunc("GET /v1/screens/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /v1/screens/{id}", s.handleCancel)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return echoEpoch(mux)
}

// echoEpoch reflects the coordinator's fencing epoch back on every
// response that carried one.
func echoEpoch(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if e := r.Header.Get(EpochHeader); e != "" {
			w.Header().Set(EpochHeader, e)
		}
		next.ServeHTTP(w, r)
	})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req ScreenRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.ClientID == "" {
		req.ClientID = r.Header.Get("X-Client-ID")
	}
	view, existing, err := s.SubmitIdem(req, r.Header.Get("Idempotency-Key"))
	if err != nil {
		writeError(w, submitStatus(err), err)
		return
	}
	if existing {
		// A duplicate submission (client retry across a timeout or server
		// restart) maps onto the already-admitted job.
		writeJSON(w, http.StatusOK, view)
		return
	}
	w.Header().Set("Location", "/v1/screens/"+view.ID)
	writeJSON(w, http.StatusAccepted, view)
}

// submitStatus maps an admission error to its HTTP status: retryable
// backpressure is 429, outright unavailability 503, and a full or failing
// journal disk 507 (Insufficient Storage) — the client's request is fine,
// the server cannot durably accept it right now.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDeadlineUnmeetable):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining), errors.Is(err, ErrBreakerOpen):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrStorageFull):
		return http.StatusInsufficientStorage
	}
	return http.StatusBadRequest
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	view, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	page, err := ParsePage(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	view.Result = view.Result.Paged(page)
	writeJSON(w, http.StatusOK, view)
}

// handlePartial serves the ranking of the ligands a job has completed so
// far — the coordinator's streaming-merge source. Terminal jobs serve
// their full set, so one polling loop covers a shard's whole lifecycle.
func (s *Service) handlePartial(w http.ResponseWriter, r *http.Request) {
	pv, err := s.Partial(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	page, err := ParsePage(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pv.Paginate(page)
	writeJSON(w, http.StatusOK, pv)
}

// handleTrace streams a job's timeline in Chrome trace format. The export
// is a point-in-time snapshot: tracing a running job returns the spans
// recorded so far.
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	rec, err := s.Trace(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	rec.WriteChrome(w)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, err := s.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrTerminal):
		writeError(w, http.StatusConflict, err)
	default:
		writeJSON(w, http.StatusAccepted, view)
	}
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	code := http.StatusOK
	if st.Draining {
		// Draining instances fail readiness so load balancers stop
		// routing to them while running jobs finish.
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, st)
}

// handleReady is the readiness probe: 200 once the journal is replayed
// and the worker pool is up, 503 before that and while draining. The
// coordinator and CI poll it instead of sleeping.
func (s *Service) handleReady(w http.ResponseWriter, r *http.Request) {
	ready := s.Ready()
	code := http.StatusOK
	if !ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"ready":    ready,
		"recovery": s.Recovery(),
	})
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteTo(w, s.Stats())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	var shed *ShedError
	if errors.As(err, &shed) {
		// Overload rejections tell the client when to come back and how
		// full the queue was, so backoff can be informed instead of blind.
		secs := int(math.Ceil(shed.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, code, map[string]any{
			"error":               err.Error(),
			"reason":              shed.Reason,
			"retry_after_seconds": secs,
			"queue_depth":         shed.QueueDepth,
			"limit":               shed.Limit,
		})
		return
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
