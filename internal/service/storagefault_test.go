package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/metascreen/metascreen/internal/fsim"
)

// corruptCheckpoint rewrites the interrupted job's checkpoint file with
// mutate applied to its current bytes.
func corruptCheckpoint(t *testing.T, dir, id string, mutate func([]byte) []byte) {
	t.Helper()
	path := filepath.Join(dir, "checkpoints", id+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointCorruptionFallback: a damaged checkpoint must never stop
// a job from finishing. The service quarantines the corrupt file (for
// post-mortem, under <DataDir>/quarantine/) and falls back to WAL-only
// replay — the job restarts from scratch and still produces the
// reference ranking.
func TestCheckpointCorruptionFallback(t *testing.T) {
	want := referenceResult(t)
	cases := []struct {
		name       string
		mutate     func([]byte) []byte
		quarantine bool
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }, true},
		{"bit_flipped", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/3] ^= 0x10
			return c
		}, true},
		{"zero_length", func(b []byte) []byte { return nil }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			id := crashAfterCheckpoints(t, dir, 2)
			corruptCheckpoint(t, dir, id, tc.mutate)

			s, err := New(durableConfig(dir))
			if err != nil {
				t.Fatalf("boot with corrupt checkpoint failed: %v", err)
			}
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				s.Shutdown(ctx)
			}()

			waitFor(t, func() bool {
				v, err := s.Get(id)
				return err == nil && v.State.Terminal()
			})
			v, err := s.Get(id)
			if err != nil || v.State != StateDone {
				t.Fatalf("job %s after corrupt-checkpoint reboot: state %q err %v, want done", id, v.State, err)
			}
			assertMatchesReference(t, v.Result, want)

			if tc.quarantine {
				qpath := filepath.Join(dir, "quarantine", id+".json")
				if _, err := os.Stat(qpath); err != nil {
					t.Errorf("corrupt checkpoint not preserved under quarantine/: %v", err)
				}
			}
			var buf strings.Builder
			if err := s.metrics.WriteTo(&buf, s.Stats()); err != nil {
				t.Fatal(err)
			}
			if strings.Contains(buf.String(), "metascreen_checkpoints_quarantined_total 0\n") {
				t.Errorf("checkpoints_quarantined_total = 0, want >= 1")
			}
		})
	}
}

// TestStorageFullDegradedMode: when the disk fills, the service degrades
// to read-only — submissions get 507 + Retry-After while ranking, list
// and metrics reads keep being served — and recovers in place (no
// restart) once space frees, re-enabling journaling. A restart over the
// same dir must still know every job that was acknowledged with a 202.
func TestStorageFullDegradedMode(t *testing.T) {
	saved := storageProbeInterval
	storageProbeInterval = 0
	defer func() { storageProbeInterval = saved }()

	dir := t.TempDir()
	// Roomy enough to boot, admit a few jobs and (after the operator
	// frees space) run one more to completion — compaction, checkpoints
	// and all — yet small enough that the submit loop fills it.
	plan, err := fsim.ParsePlan("*:enospc@131072")
	if err != nil {
		t.Fatal(err)
	}
	faulty := fsim.New(plan, fsim.Config{Seed: 99})
	cfg := durableConfig(dir)
	cfg.FS = faulty
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(key string) (JobView, int, string) {
		t.Helper()
		req, err := http.NewRequest("POST", srv.URL+"/v1/screens", jsonBody(t, recoveryRequest))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Idempotency-Key", key)
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		retryAfter := resp.Header.Get("Retry-After")
		var v JobView
		if resp.StatusCode == http.StatusAccepted {
			decodeJSON(t, resp, &v)
		} else {
			io.Copy(io.Discard, resp.Body)
		}
		return v, resp.StatusCode, retryAfter
	}
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// Submit until the simulated disk fills. Every 202 is an acknowledged,
	// journaled admission; the first refusal must be a 507 with advice on
	// when to retry.
	var ackedIDs []string
	var sawFull bool
	var retryAfter string
	for i := 0; i < 200; i++ {
		v, code, ra := post(fmt.Sprintf("full-%d", i))
		if code == http.StatusAccepted {
			ackedIDs = append(ackedIDs, v.ID)
			waitFor(t, func() bool {
				got, err := s.Get(v.ID)
				return err == nil && got.State.Terminal()
			})
			continue
		}
		sawFull, retryAfter = true, ra
		if code != http.StatusInsufficientStorage {
			t.Fatalf("submit %d: status %d, want 507", i, code)
		}
		break
	}
	if !sawFull {
		t.Fatal("disk never filled: no 507 observed")
	}
	if retryAfter == "" {
		t.Error("507 response missing Retry-After header")
	}
	if len(ackedIDs) == 0 {
		t.Fatal("no job was acknowledged before the disk filled")
	}

	// Degraded means read-only, not down: rankings, listings, traces and
	// metrics keep flowing.
	if code, _ := get("/v1/screens"); code != http.StatusOK {
		t.Errorf("GET /v1/screens while degraded: %d, want 200", code)
	}
	if code, _ := get("/v1/screens/" + ackedIDs[0]); code != http.StatusOK {
		t.Errorf("GET job while degraded: %d, want 200", code)
	}
	if code, _ := get("/v1/screens/" + ackedIDs[0] + "/trace"); code != http.StatusOK {
		t.Errorf("GET trace while degraded: %d, want 200", code)
	}
	code, metrics := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics while degraded: %d, want 200", code)
	}
	if !strings.Contains(metrics, "metascreen_storage_degraded 1") {
		t.Errorf("metrics do not report metascreen_storage_degraded 1")
	}
	st := s.Stats()
	if !st.StorageDegraded || st.StorageReason != "disk_full" {
		t.Errorf("Stats() = degraded=%v reason=%q, want degraded with reason disk_full", st.StorageDegraded, st.StorageReason)
	}
	if snap := s.DebugSnapshot(); !snap.Storage.Degraded {
		t.Errorf("debug snapshot does not flag storage degradation")
	}

	// Free the disk: the next submission probes, recovers the journal in
	// place and is admitted — no restart needed.
	faulty.FreeSpace()
	v, code2, _ := post("after-recovery")
	if code2 != http.StatusAccepted {
		t.Fatalf("submit after FreeSpace: status %d, want 202", code2)
	}
	ackedIDs = append(ackedIDs, v.ID)
	waitFor(t, func() bool {
		got, err := s.Get(v.ID)
		return err == nil && got.State.Terminal()
	})
	st = s.Stats()
	if st.StorageDegraded {
		t.Error("service still degraded after successful recovery")
	}
	_, body := get("/metrics")
	if !strings.Contains(body, "metascreen_storage_degraded 0") {
		t.Error("metrics still report storage degraded after recovery")
	}
	if strings.Contains(body, "metascreen_storage_recoveries_total 0\n") {
		t.Error("storage_recoveries_total = 0 after in-place recovery")
	}

	// Restart over the same dir with a healthy disk: every 202 survived.
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	s2, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s2.Shutdown(ctx)
	}()
	for _, id := range ackedIDs {
		if _, err := s2.Get(id); err != nil {
			t.Errorf("acknowledged job %s lost across restart: %v", id, err)
		}
	}
}
