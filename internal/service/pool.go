package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/surface"
)

// The worker pool: N goroutines drain the bounded queue, each running one
// screen at a time through the core engine with a per-job context. The
// pool exits when the queue closes (shutdown).

// worker is one pool goroutine's life.
func (s *Service) worker() {
	defer s.workers.Done()
	for j := range s.queue.ch {
		s.runJob(j)
	}
}

// runJob executes one claimed job through its full lifecycle.
func (s *Service) runJob(j *Job) {
	s.mu.Lock()
	if j.state != StateQueued {
		// Cancelled (or shut down) while waiting in the queue.
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	if j.req.TimeoutSeconds > 0 {
		ctx, cancel = context.WithTimeout(context.Background(),
			time.Duration(j.req.TimeoutSeconds*float64(time.Second)))
	}
	j.state = StateRunning
	j.started = s.now()
	j.cancel = cancel
	run := s.run
	s.mu.Unlock()

	s.metrics.WorkerBusy(1)
	res, err := run(ctx, j.req)
	s.metrics.WorkerBusy(-1)
	cancel()

	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case err == nil:
		s.finishLocked(j, StateDone, res, "")
	case errors.Is(err, context.Canceled):
		s.finishLocked(j, StateCancelled, nil, "cancelled while running")
	case errors.Is(err, context.DeadlineExceeded):
		s.finishLocked(j, StateFailed, nil,
			fmt.Sprintf("deadline exceeded after %gs", j.req.TimeoutSeconds))
	default:
		s.finishLocked(j, StateFailed, nil, err.Error())
	}
}

// runScreen is the production runner: it materializes the request into
// the exact same core.ScreenCtx call a library user would write, so a
// service job and a library screen with equal parameters and seed return
// identical rankings.
func (s *Service) runScreen(ctx context.Context, req ScreenRequest) (*core.ScreenResult, error) {
	ds, err := core.DatasetByName(req.Dataset)
	if err != nil {
		return nil, err
	}
	backf, err := req.backendFactory()
	if err != nil {
		return nil, err
	}
	algf := func() (metaheuristic.Algorithm, error) {
		return metaheuristic.NewPaper(req.Metaheuristic, req.Scale)
	}
	return core.ScreenCtx(ctx, ds.Receptor, core.SyntheticLibrary(req.Library),
		surface.Options{MaxSpots: req.Spots}, forcefield.Options{},
		algf, backf, req.Seed, s.cfg.ScreenWorkers)
}
