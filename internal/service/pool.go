package service

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/cudasim"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/surface"
)

// The worker pool: N goroutines drain the bounded queue, each running one
// screen at a time through the core engine with a per-job context. The
// pool exits when the queue closes (shutdown).
//
// Failure policy: a panicking runner is recovered (the worker survives to
// serve the next job), transient failures retry with exponential backoff
// and deterministic jitter up to Config.MaxAttempts, and permanent
// failures fail the job immediately with the typed cause in its record.

// maxRetryDelay caps the exponential backoff between attempts.
const maxRetryDelay = 5 * time.Second

// worker is one pool goroutine's life.
func (s *Service) worker() {
	defer s.workers.Done()
	for j := range s.queue.ch {
		s.runJob(j)
	}
}

// runJob executes one claimed job through its full lifecycle, including
// transient-failure retries.
func (s *Service) runJob(j *Job) {
	s.mu.Lock()
	if j.state != StateQueued {
		// Cancelled (or shut down) while waiting in the queue.
		s.mu.Unlock()
		return
	}
	// The base context lives for all attempts; Cancel aborts the current
	// attempt and any backoff in between.
	base, cancel := context.WithCancel(context.Background())
	j.state = StateRunning
	j.started = s.now()
	j.cancel = cancel
	run := s.run
	s.mu.Unlock()
	defer cancel()

	s.metrics.WorkerBusy(1)
	defer s.metrics.WorkerBusy(-1)

	var (
		res *core.ScreenResult
		err error
	)
	for attempt := 1; ; attempt++ {
		attemptCtx := base
		acancel := func() {}
		if j.req.TimeoutSeconds > 0 {
			attemptCtx, acancel = context.WithTimeout(base,
				time.Duration(j.req.TimeoutSeconds*float64(time.Second)))
		}
		res, err = s.safeRun(run, attemptCtx, j.req)
		acancel()

		s.mu.Lock()
		j.attempts = attempt
		if err != nil {
			j.lastErr = err.Error()
		}
		s.mu.Unlock()

		if err == nil || errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded) ||
			!transientErr(err) || attempt >= s.cfg.MaxAttempts {
			break
		}
		s.metrics.JobRetried()
		if !s.backoff(base, j.id, attempt) {
			err = context.Canceled
			break
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case err == nil:
		s.finishLocked(j, StateDone, res, "")
	case errors.Is(err, context.Canceled):
		s.finishLocked(j, StateCancelled, nil, "cancelled while running")
	case errors.Is(err, context.DeadlineExceeded):
		s.finishLocked(j, StateFailed, nil,
			fmt.Sprintf("deadline exceeded after %gs", j.req.TimeoutSeconds))
	default:
		s.finishLocked(j, StateFailed, nil, err.Error())
	}
}

// safeRun executes one attempt, converting a runner panic into an error
// so a bad job cannot take the worker goroutine down with it.
func (s *Service) safeRun(run runnerFunc, ctx context.Context, req ScreenRequest) (res *core.ScreenResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.WorkerPanic()
			res = nil
			err = fmt.Errorf("service: worker panic: %v", r)
		}
	}()
	return run(ctx, req)
}

// transientErr classifies a failure as retryable: a transient simulated
// device error, or any error advertising Transient() == true.
func transientErr(err error) bool {
	if cudasim.IsTransient(err) {
		return true
	}
	var t interface{ Transient() bool }
	if errors.As(err, &t) {
		return t.Transient()
	}
	return false
}

// backoff sleeps before retry number `attempt`, doubling the base delay
// per retry with a deterministic jitter derived from the job ID (so test
// runs are reproducible without a global RNG). It returns false when the
// job was cancelled during the wait.
func (s *Service) backoff(ctx context.Context, jobID string, attempt int) bool {
	delay := s.cfg.RetryBaseDelay << (attempt - 1)
	if delay > maxRetryDelay || delay <= 0 {
		delay = maxRetryDelay
	}
	// Jitter factor in [0.5, 1.5), hashed from the job and attempt.
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", jobID, attempt)
	factor := 0.5 + float64(h.Sum64()%1024)/1024
	t := time.NewTimer(time.Duration(float64(delay) * factor))
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// runScreen is the production runner: it materializes the request into
// the exact same core.ScreenCtx call a library user would write, so a
// service job and a library screen with equal parameters and seed return
// identical rankings.
func (s *Service) runScreen(ctx context.Context, req ScreenRequest) (*core.ScreenResult, error) {
	ds, err := core.DatasetByName(req.Dataset)
	if err != nil {
		return nil, err
	}
	backf, err := req.backendFactory()
	if err != nil {
		return nil, err
	}
	algf := func() (metaheuristic.Algorithm, error) {
		return metaheuristic.NewPaper(req.Metaheuristic, req.Scale)
	}
	return core.ScreenCtx(ctx, ds.Receptor, core.SyntheticLibrary(req.Library),
		surface.Options{MaxSpots: req.Spots}, forcefield.Options{},
		algf, backf, req.Seed, s.cfg.ScreenWorkers)
}
