package service

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"syscall"
	"time"

	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/cudasim"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/obs"
	"github.com/metascreen/metascreen/internal/rng"
	"github.com/metascreen/metascreen/internal/sched"
	"github.com/metascreen/metascreen/internal/surface"
	"github.com/metascreen/metascreen/internal/trace"
)

// The worker pool: N goroutines drain the bounded queue, each running one
// screen at a time through the core engine with a per-job context. The
// pool exits when the queue closes (shutdown).
//
// Failure policy: a panicking runner is recovered (the worker survives to
// serve the next job), transient failures retry with exponential backoff
// and deterministic jitter up to Config.MaxAttempts, and permanent
// failures fail the job immediately with the typed cause in its record.

// maxRetryDelay caps the exponential backoff between attempts.
const maxRetryDelay = 5 * time.Second

// worker is one pool goroutine's life: pop fairly, wait for a slot in
// the adaptive concurrency window, run. When the AIMD limiter has shrunk
// the window below the worker count, the surplus workers park in Acquire
// — the backend sees at most Limit concurrent jobs even though the pool
// has more goroutines.
func (s *Service) worker() {
	defer s.workers.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		if !s.ctrl.Limiter.Acquire() {
			// Limiter closed: shutdown already cancelled every queued job.
			return
		}
		s.runJob(j)
		s.ctrl.Limiter.Release()
	}
}

// runJob executes one claimed job through its full lifecycle, including
// transient-failure retries.
func (s *Service) runJob(j *Job) {
	s.mu.Lock()
	if j.state != StateQueued {
		// Cancelled (or shut down) while waiting in the queue.
		s.mu.Unlock()
		return
	}
	if !j.deadline.IsZero() && s.ctrl.ShouldCull(s.now(), j.deadline) {
		// The deadline can no longer be met even if the job starts right
		// now: shed it instead of burning a worker on a doomed run.
		s.metrics.Shed("deadline_dequeue")
		s.finishLocked(j, StateShed, nil, "shed: deadline unmeetable at dequeue")
		s.mu.Unlock()
		return
	}
	// The base context lives for all attempts; Cancel aborts the current
	// attempt and any backoff in between.
	base, cancel := context.WithCancel(context.Background())
	j.state = StateRunning
	j.started = s.now()
	j.cancel = cancel
	s.ctrl.ObserveQueueWait(j.started.Sub(j.submitted))
	s.metrics.ClassQueueWait(j.class, j.started.Sub(j.submitted))
	// A job recovered from the journal resumes its attempt numbering where
	// the dead process left off, with a fresh retry budget for this boot.
	first := j.attempts + 1
	id, req, run := j.id, j.req, s.run
	// Graceful degradation: under queue pressure, shrink this job's search
	// effort instead of failing outright. The reduced scale is recorded on
	// the job so results are never silently rescaled.
	fill := float64(s.queue.depth()) / float64(s.cfg.QueueDepth)
	if f := s.ctrl.EffortFactor(fill); f < 1 {
		j.degraded = true
		j.effortFactor = f
		j.effectiveScale = req.Scale * f
		req.Scale = j.effectiveScale
		s.metrics.Degraded()
		s.log.Info("job degraded under pressure", "job", id,
			"fill", fill, "effort_factor", f, "effective_scale", req.Scale)
	}
	jobDeadline := j.deadline
	if j.rec == nil {
		// Recovered job: its recorder died with the previous process.
		j.rec = &trace.Recorder{}
		if !j.submitted.IsZero() {
			j.rec.SetEpoch(j.submitted)
		}
	}
	rec, submitted, startedAt := j.rec, j.submitted, j.started
	s.appendEvent(jobEvent{Type: evStarted, Job: id, Time: j.started, Attempt: first})
	s.mu.Unlock()
	defer cancel()

	logger := s.log.With("job", id)
	logger.Info("job started", "attempt", first,
		"queue_seconds", startedAt.Sub(submitted).Seconds())
	// Everything the screen does below runs with the job's recorder and a
	// job-correlated logger in its context; the engine picks both up.
	base = trace.NewContext(obs.NewContext(base, logger), rec)

	s.metrics.WorkerBusy(1)
	defer s.metrics.WorkerBusy(-1)

	var (
		res *core.ScreenResult
		err error
	)
	for attempt := first; ; attempt++ {
		attemptCtx := base
		acancel := func() {}
		if req.TimeoutSeconds > 0 {
			attemptCtx, acancel = context.WithTimeout(base,
				time.Duration(req.TimeoutSeconds*float64(time.Second)))
		}
		dcancel := func() {}
		if !jobDeadline.IsZero() {
			attemptCtx, dcancel = context.WithDeadline(attemptCtx, jobDeadline)
		}
		attemptStart := s.now()
		res, err = s.safeRun(run, attemptCtx, id, req)
		dcancel()
		acancel()
		s.ctrl.ObserveAttempt(s.now().Sub(attemptStart))
		rec.AddSpan(trace.Span{
			Track: "screen",
			Name:  "attempt " + strconv.Itoa(attempt),
			Cat:   trace.CatScreen,
			Start: attemptStart.Sub(submitted).Seconds(),
			End:   s.now().Sub(submitted).Seconds(),
			Args:  map[string]string{"job": id, "attempt": strconv.Itoa(attempt)},
		})

		s.mu.Lock()
		j.attempts = attempt
		if err != nil {
			j.lastErr = err.Error()
			s.appendEvent(jobEvent{Type: evAttempt, Job: id, Attempt: attempt, Error: j.lastErr})
		}
		s.mu.Unlock()

		if err == nil || errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded) ||
			!transientErr(err) || attempt-first+1 >= s.cfg.MaxAttempts {
			break
		}
		delay := s.retryDelay(id, attempt)
		if !jobDeadline.IsZero() && s.now().Add(delay).After(jobDeadline) {
			// The backoff would outlive the job's deadline; failing now is
			// strictly better than sleeping only to fail on wake.
			s.metrics.Shed("deadline_backoff")
			err = fmt.Errorf("service: job deadline would expire during retry backoff (%v sleep, %v remaining): %w",
				delay.Round(time.Millisecond), jobDeadline.Sub(s.now()).Round(time.Millisecond), err)
			break
		}
		s.metrics.JobRetried()
		logger.Warn("attempt failed, retrying", "attempt", attempt, "err", err,
			"backoff", delay)
		if !s.sleepRetry(base, delay) {
			err = context.Canceled
			break
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		// Simulated process death: no terminal transition and no journal
		// record, exactly as if the worker died mid-run. The next boot over
		// the data dir re-enqueues the job.
		return
	}
	// The breaker's failure signal: this job's final attempt lost every
	// device of its simulated platform.
	j.deviceLost = err != nil && errors.Is(err, sched.ErrAllDevicesLost)
	switch {
	case err == nil:
		s.ctrl.ObserveRun(s.now().Sub(j.started))
		s.finishLocked(j, StateDone, res, "")
	case errors.Is(err, context.Canceled):
		s.finishLocked(j, StateCancelled, nil, "cancelled while running")
	case errors.Is(err, context.DeadlineExceeded):
		msg := fmt.Sprintf("deadline exceeded after %gs", req.TimeoutSeconds)
		if !jobDeadline.IsZero() && !s.now().Before(jobDeadline) {
			msg = "job deadline exceeded while running"
		}
		s.finishLocked(j, StateFailed, nil, msg)
	default:
		s.finishLocked(j, StateFailed, nil, err.Error())
	}
}

// safeRun executes one attempt, converting a runner panic into an error
// so a bad job cannot take the worker goroutine down with it.
func (s *Service) safeRun(run runnerFunc, ctx context.Context, id string, req ScreenRequest) (res *core.ScreenResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.WorkerPanic()
			res = nil
			err = fmt.Errorf("service: worker panic: %v", r)
		}
	}()
	return run(ctx, id, req)
}

// transientErr classifies a failure as retryable: a transient simulated
// device error, or any error advertising Transient() == true.
func transientErr(err error) bool {
	if cudasim.IsTransient(err) {
		return true
	}
	var t interface{ Transient() bool }
	if errors.As(err, &t) {
		return t.Transient()
	}
	return false
}

// retryDelay computes the backoff before retry number `attempt`: the
// base delay doubles per retry with a deterministic jitter derived from
// the job ID (so test runs are reproducible without a global RNG). It is
// computed separately from the sleep so the caller can compare it against
// the job's deadline before committing to the wait.
func (s *Service) retryDelay(jobID string, attempt int) time.Duration {
	delay := s.cfg.RetryBaseDelay << (attempt - 1)
	if delay > maxRetryDelay || delay <= 0 {
		delay = maxRetryDelay
	}
	// Jitter factor in [0.5, 1.5), hashed from the job and attempt.
	return rng.Jitter(delay, 0.5, jobID, uint64(attempt))
}

// sleepRetry waits out one retry backoff; false means the job was
// cancelled during the wait.
func (s *Service) sleepRetry(ctx context.Context, delay time.Duration) bool {
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// runScreen is the production runner: it materializes the request into
// the exact same core screen call a library user would write, so a
// service job and a library screen with equal parameters and seed return
// identical rankings. A request naming specific Ligands screens just that
// shard of the library, in library order. With durability enabled, the
// screen resumes from the job's checkpoint snapshot and re-snapshots it
// every CheckpointEvery completed ligands — since seed lanes are keyed by
// ligand name, the resumed ranking is byte-identical to an uninterrupted
// run. Every run goes through the resumable path so each completed ligand
// also lands in the job's in-memory partial mirror, which the /partial
// endpoint streams to the distributed coordinator.
func (s *Service) runScreen(ctx context.Context, id string, req ScreenRequest) (*core.ScreenResult, error) {
	ds, err := core.DatasetByName(req.Dataset)
	if err != nil {
		return nil, err
	}
	backf, err := req.backendFactory()
	if err != nil {
		return nil, err
	}
	algf := func() (metaheuristic.Algorithm, error) {
		return metaheuristic.NewPaper(req.Metaheuristic, req.Scale)
	}
	lib := core.SyntheticLibrary(req.Library)
	if len(req.Ligands) > 0 {
		lib = filterLibrary(lib, req.Ligands)
	}
	spotOpts := surface.Options{MaxSpots: req.Spots}

	s.mu.Lock()
	durable := s.journal != nil
	s.mu.Unlock()

	cp := &core.Checkpoint{}
	if durable {
		cp = s.loadJobCheckpoint(id, req.Seed)
		if len(cp.Ligands) > 0 {
			// A resumed job's already-completed ligands are partial
			// results too.
			s.mirrorPartial(id, cp.Ligands)
		}
	}
	onCp := func(cp *core.Checkpoint, newly int) error {
		s.mirrorPartial(id, cp.Ligands)
		if !durable || newly%s.cfg.CheckpointEvery != 0 {
			return nil
		}
		s.mu.Lock()
		degraded := s.storageDegraded
		s.mu.Unlock()
		if degraded {
			// Read-only mode: in-flight jobs finish un-journaled; the job
			// keeps its last good snapshot.
			return nil
		}
		if err := s.writeJobCheckpoint(id, cp); err != nil {
			// A failed snapshot must not abort the screen: the job keeps
			// its previous checkpoint and the WAL still replays its
			// lifecycle. A full disk flips degraded mode so the service
			// stops promising durability it cannot deliver.
			s.metrics.CheckpointError()
			s.log.Warn("checkpoint write failed, screen continues", "job", id, "err", err)
			if errors.Is(err, syscall.ENOSPC) {
				s.mu.Lock()
				s.enterDegradedLocked(err)
				s.mu.Unlock()
			}
			return nil
		}
		s.mu.Lock()
		if j, ok := s.jobs[id]; ok {
			j.cpLigands = len(cp.Ligands)
		}
		s.appendEvent(jobEvent{Type: evCheckpoint, Job: id, Ligands: len(cp.Ligands)})
		hook := s.checkpointHook
		s.mu.Unlock()
		s.metrics.CheckpointWritten()
		if hook != nil {
			hook(id, newly)
		}
		return nil
	}
	return core.ScreenResumableCtx(ctx, ds.Receptor, lib, spotOpts, forcefield.Options{},
		algf, backf, req.Seed, s.cfg.ScreenWorkers, cp, onCp)
}

// filterLibrary keeps the named ligands, preserving library order so
// aggregate sums stay deterministic. Validation already guaranteed every
// name exists.
func filterLibrary(lib []*molecule.Molecule, names []string) []*molecule.Molecule {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	out := lib[:0:0]
	for _, lig := range lib {
		if want[lig.Name] {
			out = append(out, lig)
		}
	}
	return out
}
