package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/cudasim"
)

// transientError builds the kind of typed device error the simulated
// backend surfaces for recoverable faults.
func transientError() error {
	return fmt.Errorf("screen aborted: %w",
		&cudasim.DeviceError{Device: 1, Kind: cudasim.FaultTransient, Op: "scoring", At: 0.25})
}

// flakyRunner fails with a transient error for the first failures calls,
// then succeeds.
func flakyRunner(failures int64) (runnerFunc, *atomic.Int64) {
	var calls atomic.Int64
	run := func(ctx context.Context, id string, req ScreenRequest) (*core.ScreenResult, error) {
		if calls.Add(1) <= failures {
			return nil, transientError()
		}
		return stubResult(), nil
	}
	return run, &calls
}

// submitAndWait submits one job and polls it to a terminal state.
func submitAndWait(t *testing.T, c *http.Client, base string, req ScreenRequest) JobView {
	t.Helper()
	var v JobView
	if code := doJSON(t, c, "POST", base+"/v1/screens", req, &v); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	return pollState(t, c, base, v.ID, JobState.Terminal)
}

func metricsText(t *testing.T, c *http.Client, base string) string {
	t.Helper()
	resp, err := c.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestTransientJobRetriesThenSucceeds: two transient failures, then
// success — the job lands Done with the retry history visible in its JSON
// and in the metrics.
func TestTransientJobRetriesThenSucceeds(t *testing.T) {
	run, calls := flakyRunner(2)
	s := newTestService(t, Config{Workers: 1, MaxAttempts: 5, RetryBaseDelay: 1e6 /* 1ms */}, run)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := srv.Client()

	v := submitAndWait(t, c, srv.URL, ScreenRequest{Seed: 1})
	if v.State != StateDone {
		t.Fatalf("job finished as %s (%s)", v.State, v.Error)
	}
	if calls.Load() != 3 {
		t.Errorf("runner called %d times, want 3", calls.Load())
	}
	if v.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", v.Attempts)
	}
	if !strings.Contains(v.LastError, "transient") {
		t.Errorf("last_error = %q, want the transient cause", v.LastError)
	}
	if v.Error != "" {
		t.Errorf("done job carries error %q", v.Error)
	}
	if v.Result == nil {
		t.Fatal("done job has no result")
	}

	text := metricsText(t, c, srv.URL)
	if !strings.Contains(text, "metascreen_job_retries_total 2") {
		t.Errorf("metrics missing job_retries_total 2:\n%s", text)
	}
	if !strings.Contains(text, `metascreen_jobs_finished_total{state="done"} 1`) {
		t.Error("retried job not counted as done")
	}
}

// TestTransientExhaustsAttempts: MaxAttempts bounds the retries; the job
// fails with the typed cause once the budget is spent.
func TestTransientExhaustsAttempts(t *testing.T) {
	run, calls := flakyRunner(1 << 30) // never succeeds
	s := newTestService(t, Config{Workers: 1, MaxAttempts: 3, RetryBaseDelay: 1e6}, run)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := srv.Client()

	v := submitAndWait(t, c, srv.URL, ScreenRequest{Seed: 1})
	if v.State != StateFailed {
		t.Fatalf("job finished as %s", v.State)
	}
	if calls.Load() != 3 {
		t.Errorf("runner called %d times, want MaxAttempts=3", calls.Load())
	}
	if v.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", v.Attempts)
	}
	if !strings.Contains(v.Error, "transient") {
		t.Errorf("error = %q, want the transient cause", v.Error)
	}
	if !strings.Contains(metricsText(t, c, srv.URL), "metascreen_job_retries_total 2") {
		t.Error("metrics missing the 2 retries")
	}
}

// TestPermanentErrorFailsWithoutRetry: a non-transient failure is final on
// the first attempt.
func TestPermanentErrorFailsWithoutRetry(t *testing.T) {
	var calls atomic.Int64
	run := func(ctx context.Context, id string, req ScreenRequest) (*core.ScreenResult, error) {
		calls.Add(1)
		return nil, fmt.Errorf("screen aborted: %w",
			&cudasim.DeviceError{Device: 0, Kind: cudasim.FaultPermanent, Op: "scoring", At: 0.1})
	}
	s := newTestService(t, Config{Workers: 1, MaxAttempts: 5, RetryBaseDelay: 1e6}, run)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := srv.Client()

	v := submitAndWait(t, c, srv.URL, ScreenRequest{Seed: 1})
	if v.State != StateFailed {
		t.Fatalf("job finished as %s", v.State)
	}
	if calls.Load() != 1 {
		t.Errorf("permanent failure ran %d attempts, want 1", calls.Load())
	}
	if v.Attempts != 1 {
		t.Errorf("attempts = %d, want 1", v.Attempts)
	}
	if strings.Contains(metricsText(t, c, srv.URL), "metascreen_job_retries_total 1") {
		t.Error("permanent failure counted a retry")
	}
}

// TestWorkerSurvivesPanic: a panicking runner fails its job but the worker
// goroutine lives to serve the next one.
func TestWorkerSurvivesPanic(t *testing.T) {
	var calls atomic.Int64
	run := func(ctx context.Context, id string, req ScreenRequest) (*core.ScreenResult, error) {
		if calls.Add(1) == 1 {
			panic("scoring table corrupted")
		}
		return stubResult(), nil
	}
	s := newTestService(t, Config{Workers: 1, MaxAttempts: 1}, run)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := srv.Client()

	first := submitAndWait(t, c, srv.URL, ScreenRequest{Seed: 1})
	if first.State != StateFailed {
		t.Fatalf("panicked job finished as %s", first.State)
	}
	if !strings.Contains(first.Error, "panic") || !strings.Contains(first.Error, "scoring table corrupted") {
		t.Errorf("error = %q, want the recovered panic", first.Error)
	}

	// The same (sole) worker must still be alive to run this job.
	second := submitAndWait(t, c, srv.URL, ScreenRequest{Seed: 2})
	if second.State != StateDone {
		t.Fatalf("job after panic finished as %s (%s)", second.State, second.Error)
	}
	if !strings.Contains(metricsText(t, c, srv.URL), "metascreen_worker_panics_total 1") {
		t.Error("metrics missing the recovered panic")
	}
}

// TestRetryDisabledWithSingleAttempt: MaxAttempts 1 turns retries off even
// for transient failures.
func TestRetryDisabledWithSingleAttempt(t *testing.T) {
	run, calls := flakyRunner(1 << 30)
	s := newTestService(t, Config{Workers: 1, MaxAttempts: 1}, run)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := srv.Client()

	v := submitAndWait(t, c, srv.URL, ScreenRequest{Seed: 1})
	if v.State != StateFailed || calls.Load() != 1 {
		t.Errorf("state=%s calls=%d, want failed after exactly 1 attempt", v.State, calls.Load())
	}
}
