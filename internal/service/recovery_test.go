package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/surface"
)

// The crash-recovery contract, end to end: a service killed mid-screen
// and rebooted over the same data dir resumes the interrupted job from
// its checkpoint, re-docks only the unfinished ligands, and produces a
// final ranking byte-identical to an uninterrupted run.

// jsonBody marshals a request body.
func jsonBody(t *testing.T, v any) io.Reader {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(buf)
}

// decodeJSON decodes a response body.
func decodeJSON(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// recoveryRequest is the screen used across these tests: small enough for
// test time, large enough to crash part-way through.
var recoveryRequest = ScreenRequest{
	Dataset: "2BSM", Library: 6, Spots: 2, Metaheuristic: "M3", Scale: 0.02, Seed: 7,
}

// durableConfig is the one-worker, checkpoint-per-ligand configuration the
// recovery tests run under (deterministic crash points need ScreenWorkers
// = 1).
func durableConfig(dir string) Config {
	return Config{Workers: 1, ScreenWorkers: 1, DataDir: dir, CheckpointEvery: 1, MaxAttempts: 1}
}

// referenceResult runs recoveryRequest through the library API — the
// ranking every (resumed or not) service run must reproduce exactly.
func referenceResult(t *testing.T) *core.ScreenResult {
	t.Helper()
	ds, err := core.DatasetByName(recoveryRequest.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	algf := func() (metaheuristic.Algorithm, error) {
		return metaheuristic.NewPaper(recoveryRequest.Metaheuristic, recoveryRequest.Scale)
	}
	res, err := core.ScreenCtx(context.Background(), ds.Receptor,
		core.SyntheticLibrary(recoveryRequest.Library),
		surface.Options{MaxSpots: recoveryRequest.Spots}, forcefield.Options{},
		algf, core.HostBackendFactory(core.HostConfig{Real: true}), recoveryRequest.Seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertMatchesReference compares a service result against the library
// run field by field.
func assertMatchesReference(t *testing.T, got *ResultView, want *core.ScreenResult) {
	t.Helper()
	if got == nil {
		t.Fatal("job has no result")
	}
	if len(got.Ranking) != len(want.Ranking) {
		t.Fatalf("ranking has %d entries, want %d", len(got.Ranking), len(want.Ranking))
	}
	for i, w := range want.Ranking {
		g := got.Ranking[i]
		if g.Ligand != w.Ligand.Name || g.Score != w.Result.Best.Score || g.Spot != w.Result.Best.Spot {
			t.Errorf("rank %d: got %s %v spot %d, want %s %v spot %d", i+1,
				g.Ligand, g.Score, g.Spot, w.Ligand.Name, w.Result.Best.Score, w.Result.Best.Spot)
		}
	}
	if got.Evaluations != want.Evaluations || got.SimulatedSeconds != want.SimulatedSeconds {
		t.Errorf("work totals (%d, %g) differ from reference (%d, %g)",
			got.Evaluations, got.SimulatedSeconds, want.Evaluations, want.SimulatedSeconds)
	}
}

// crashAfterCheckpoints runs recoveryRequest on a fresh durable service
// and simulates process death once exactly n ligands are checkpointed,
// returning the interrupted job's ID.
func crashAfterCheckpoints(t *testing.T, dir string, n int) string {
	t.Helper()
	s, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	armed := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	// The hook holds the screen at the n-th checkpoint so the "kill"
	// always lands at the same mid-screen point.
	s.checkpointHook = func(id string, newly int) {
		if newly == n {
			once.Do(func() { close(armed) })
			<-release
		}
	}
	v, err := s.Submit(recoveryRequest)
	if err != nil {
		t.Fatal(err)
	}
	<-armed
	dead := make(chan struct{})
	go func() { s.crashForTest(); close(dead) }()
	// crashForTest cancels the running screen before it waits for the
	// workers; release the hook only after that cancellation is visible.
	waitFor(t, func() bool { return s.Stats().Draining })
	close(release)
	<-dead
	return v.ID
}

func TestCrashRecoveryResumesByteIdentical(t *testing.T) {
	dir := t.TempDir()
	want := referenceResult(t)
	id := crashAfterCheckpoints(t, dir, 2)

	// The dead process left a checkpoint with exactly the 2 completed
	// ligands and no terminal record.
	cp, err := os.Open(dir + "/checkpoints/" + id + ".json")
	if err != nil {
		t.Fatalf("no checkpoint survived the crash: %v", err)
	}
	saved, err := core.LoadCheckpoint(cp)
	cp.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(saved.Ligands) != 2 || saved.Seed != recoveryRequest.Seed {
		t.Fatalf("checkpoint holds %d ligands (seed %d), want 2 (seed %d)",
			len(saved.Ligands), saved.Seed, recoveryRequest.Seed)
	}

	// Boot a fresh service over the same data dir: the job comes back
	// queued and re-runs, docking only the 4 unfinished ligands.
	s2, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s2.Shutdown(ctx)
	}()
	var redocked atomic.Int64
	s2.mu.Lock()
	s2.checkpointHook = func(string, int) { redocked.Add(1) }
	s2.mu.Unlock()

	rec := s2.Recovery()
	if rec.RecoveredJobs != 1 || rec.ReplayedRecords == 0 {
		t.Fatalf("recovery stats %+v, want 1 recovered job", rec)
	}
	waitFor(t, func() bool {
		v, err := s2.Get(id)
		return err == nil && v.State.Terminal()
	})
	v, err := s2.Get(id)
	if err != nil || v.State != StateDone {
		t.Fatalf("recovered job finished as %+v (%v)", v, err)
	}
	assertMatchesReference(t, v.Result, want)
	if got := int(redocked.Load()); got != recoveryRequest.Library-2 {
		t.Errorf("resume re-docked %d ligands, want %d", got, recoveryRequest.Library-2)
	}
	if v.Attempts < 2 {
		t.Errorf("attempts = %d; the resumed execution should count past the crashed one", v.Attempts)
	}
	// The finished job retired its checkpoint file.
	if _, err := os.Stat(dir + "/checkpoints/" + id + ".json"); !os.IsNotExist(err) {
		t.Errorf("checkpoint file still present after completion: %v", err)
	}
}

// TestRecoveryPreservesTerminalJobs: a third boot after the job finished
// replays it as done — with its ranking — and re-enqueues nothing.
func TestRecoveryPreservesTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	want := referenceResult(t)
	id := crashAfterCheckpoints(t, dir, 2)

	s2, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		v, err := s2.Get(id)
		return err == nil && v.State.Terminal()
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	s3, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s3.Shutdown(ctx)
	}()
	if rec := s3.Recovery(); rec.RecoveredJobs != 0 {
		t.Errorf("finished job re-enqueued: %+v", rec)
	}
	v, err := s3.Get(id)
	if err != nil || v.State != StateDone {
		t.Fatalf("replayed job: %+v (%v)", v, err)
	}
	assertMatchesReference(t, v.Result, want)
}

// TestIdempotencyAcrossRestart: a duplicate Idempotency-Key submission
// returns the original job — also after the service restarts from its
// journal, and over HTTP (202 for the first admission, 200 for replays).
func TestIdempotencyAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.run = func(ctx context.Context, id string, req ScreenRequest) (*core.ScreenResult, error) {
		return stubResult(), nil
	}

	srv := httptest.NewServer(s.Handler())
	post := func(key string) (JobView, int) {
		t.Helper()
		req, err := http.NewRequest("POST", srv.URL+"/v1/screens",
			jsonBody(t, ScreenRequest{Seed: 3}))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Idempotency-Key", key)
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v JobView
		decodeJSON(t, resp, &v)
		return v, resp.StatusCode
	}

	first, code := post("screen-42")
	if code != http.StatusAccepted || first.IdempotencyKey != "screen-42" {
		t.Fatalf("first submit: %d %+v", code, first)
	}
	dup, code := post("screen-42")
	if code != http.StatusOK || dup.ID != first.ID {
		t.Fatalf("duplicate submit: %d id=%s, want 200 with id %s", code, dup.ID, first.ID)
	}
	waitFor(t, func() bool {
		v, err := s.Get(first.ID)
		return err == nil && v.State == StateDone
	})
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// After a restart the key still maps to the original (now finished)
	// job: a client retrying across the outage cannot double-submit.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s2.Shutdown(ctx)
	}()
	v, existing, err := s2.SubmitIdem(ScreenRequest{Seed: 3}, "screen-42")
	if err != nil || !existing || v.ID != first.ID {
		t.Fatalf("post-restart duplicate: existing=%v id=%s err=%v, want the original %s",
			existing, v.ID, err, first.ID)
	}
	if v.State != StateDone || v.Result == nil {
		t.Errorf("replayed original lost its outcome: %+v", v)
	}
	// A different key is a genuinely new job.
	v2, existing, err := s2.SubmitIdem(ScreenRequest{Seed: 3}, "screen-43")
	if err != nil || existing || v2.ID == first.ID {
		t.Errorf("fresh key reused a job: existing=%v id=%s err=%v", existing, v2.ID, err)
	}
}
