package service

import (
	"errors"
	"testing"
)

func TestJobQueueBound(t *testing.T) {
	q := newJobQueue(2)
	if err := q.tryPush(&Job{id: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := q.tryPush(&Job{id: "b"}); err != nil {
		t.Fatal(err)
	}
	if got := q.depth(); got != 2 {
		t.Fatalf("depth %d, want 2", got)
	}
	if err := q.tryPush(&Job{id: "c"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("got %v, want ErrQueueFull", err)
	}
	// Draining one slot re-opens admission.
	if j, ok := q.pop(); !ok || j.id != "a" {
		t.Fatalf("popped %v, want a (same class and client is FIFO)", j)
	}
	if err := q.tryPush(&Job{id: "c"}); err != nil {
		t.Fatalf("push after pop: %v", err)
	}
}

func TestStateTerminal(t *testing.T) {
	for _, st := range []JobState{StateQueued, StateRunning} {
		if st.Terminal() {
			t.Errorf("%s reported terminal", st)
		}
	}
	for _, st := range TerminalStates {
		if !st.Terminal() {
			t.Errorf("%s reported non-terminal", st)
		}
	}
}

func TestRequestValidation(t *testing.T) {
	good := ScreenRequest{}.withDefaults()
	if err := good.Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := []ScreenRequest{
		{Dataset: "9XYZ"},
		{Library: -1},
		{Library: 20000},
		{Spots: 500},
		{Metaheuristic: "M9"},
		{Scale: 2},
		{Machine: "Saturn"},
		{Machine: "Jupiter", Mode: "round-robin"},
		{TimeoutSeconds: -3},
		{Priority: "urgent"},
		{DeadlineSeconds: -1},
		{Faults: "dev0:fail@1"},                    // faults require a machine
		{Machine: "Hertz", Faults: "dev9:fail@1"},  // device index out of range
		{Machine: "Hertz", Faults: "dev0:wobble"},  // unknown fault kind
	}
	for _, r := range bad {
		if err := r.withDefaults().Validate(); err == nil {
			t.Errorf("request %+v accepted", r)
		}
	}
	// Machine requests resolve to a pool backend factory.
	r := ScreenRequest{Machine: "Hertz", Mode: "heterogeneous"}.withDefaults()
	if err := r.Validate(); err != nil {
		t.Fatalf("hertz request invalid: %v", err)
	}
	if _, err := r.backendFactory(); err != nil {
		t.Fatalf("hertz backend factory: %v", err)
	}
}
