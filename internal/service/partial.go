package service

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"time"

	"github.com/metascreen/metascreen/internal/core"
)

// Pagination and partial rankings. Both exist for the same consumer: a
// ranking can be large (10k-ligand libraries), so GET responses window it
// with limit/offset, and a running job exposes the ligands it has already
// completed so the distributed coordinator can merge shard results as
// they stream in instead of waiting for whole shards.

// DefaultRankingLimit caps a ranking response when the client sends no
// limit; MaxRankingLimit caps what a client may ask for. Both protect the
// service from shipping unbounded payloads per request.
const (
	DefaultRankingLimit = 1000
	MaxRankingLimit     = 10000
)

// Page is a limit/offset window over a ranking.
type Page struct {
	Limit  int
	Offset int
}

// DefaultPage is the window applied when the client sends no parameters.
func DefaultPage() Page { return Page{Limit: DefaultRankingLimit} }

// ParsePage reads limit/offset query parameters, applying the documented
// defaults and caps. Malformed or non-positive limits and negative
// offsets are client errors.
func ParsePage(q url.Values) (Page, error) {
	p := DefaultPage()
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return p, fmt.Errorf("service: limit %q must be a positive integer", v)
		}
		if n > MaxRankingLimit {
			n = MaxRankingLimit
		}
		p.Limit = n
	}
	if v := q.Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return p, fmt.Errorf("service: offset %q must be a non-negative integer", v)
		}
		p.Offset = n
	}
	return p, nil
}

// clip resolves the window against a ranking of n entries.
func (p Page) clip(n int) (lo, hi int) {
	lo = p.Offset
	if lo > n {
		lo = n
	}
	hi = n
	if p.Limit > 0 && lo+p.Limit < hi {
		hi = lo + p.Limit
	}
	return lo, hi
}

// PartialEntry is one completed ligand of a still-running (or finished)
// screen. Unlike RankEntry it carries the ligand's own modeled time and
// evaluation count, so a coordinator merging shards can rebuild the
// screen totals in library order — bit-identical to a single-node sum.
type PartialEntry struct {
	Rank        int     `json:"rank"`
	Ligand      string  `json:"ligand"`
	Atoms       int     `json:"atoms"`
	Score       float64 `json:"score"`
	Spot        int     `json:"spot"`
	SimSeconds  float64 `json:"sim_seconds"`
	Evaluations int64   `json:"evaluations"`
}

// PartialView is a point-in-time ranking of the ligands a job has
// completed so far, sorted by the same score-then-name rule as the final
// ranking. For a terminal job it holds the complete ranking.
type PartialView struct {
	ID        string         `json:"id"`
	State     JobState       `json:"state"`
	Completed int            `json:"completed"`
	Total     int            `json:"total"`
	Entries   []PartialEntry `json:"entries"`
	// EntriesTotal and EntriesOffset window Entries like a paginated
	// ranking; EntriesTotal always counts every completed ligand.
	EntriesTotal  int `json:"entries_total,omitempty"`
	EntriesOffset int `json:"entries_offset,omitempty"`
	// RateLPS is the job's self-reported completion rate in
	// ligands/second, smoothed over checkpoint deltas. A coordinator
	// polling shards folds it into its per-worker straggler estimates —
	// finer-grained than what it can infer from poll-to-poll deltas.
	RateLPS float64 `json:"rate_lps,omitempty"`
}

// Partial snapshots the per-ligand results a job has produced so far.
// The entries come from the in-memory mirror of the screen's checkpoint,
// so they exist for every running job (durable or not); a job that
// finished in this process serves its full set.
func (s *Service) Partial(id string) (PartialView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return PartialView{}, ErrNotFound
	}
	total := j.req.Library
	if len(j.req.Ligands) > 0 {
		total = len(j.req.Ligands)
	}
	pv := PartialView{ID: j.id, State: j.state, Total: total}
	switch {
	case len(j.partial) > 0:
		for _, rec := range j.partial {
			pv.Entries = append(pv.Entries, PartialEntry{
				Ligand:      rec.Name,
				Atoms:       rec.Atoms,
				Score:       rec.Best.Score,
				Spot:        rec.Best.Spot,
				SimSeconds:  rec.SimulatedSeconds,
				Evaluations: rec.Evaluations,
			})
		}
	case j.state == StateDone && j.restored != nil:
		// A job restored from the journal lost its per-ligand work
		// counters with the previous process; the ranking itself is
		// intact, so serve it with zero sim/evaluation detail.
		for _, e := range j.restored.Ranking {
			pv.Entries = append(pv.Entries, PartialEntry{
				Ligand: e.Ligand, Atoms: e.Atoms, Score: e.Score, Spot: e.Spot,
			})
		}
	}
	sort.Slice(pv.Entries, func(a, b int) bool {
		if pv.Entries[a].Score != pv.Entries[b].Score {
			return pv.Entries[a].Score < pv.Entries[b].Score
		}
		return pv.Entries[a].Ligand < pv.Entries[b].Ligand
	})
	for i := range pv.Entries {
		pv.Entries[i].Rank = i + 1
	}
	pv.Completed = len(pv.Entries)
	pv.EntriesTotal = len(pv.Entries)
	pv.RateLPS = j.rate.Value()
	return pv, nil
}

// Paginate clips the entries to the page window.
func (pv *PartialView) Paginate(p Page) {
	lo, hi := p.clip(len(pv.Entries))
	pv.Entries = pv.Entries[lo:hi]
	pv.EntriesOffset = lo
}

// mirrorPartial copies a screen's completed-ligand records into the
// job's in-memory partial set, from the checkpoint callback or a loaded
// checkpoint snapshot.
func (s *Service) mirrorPartial(id string, recs map[string]core.LigandRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		before := len(j.partial)
		j.addPartial(recs)
		j.observeRate(len(j.partial)-before, time.Now())
	}
}

// Ready reports readiness: the journal (if any) has been replayed, the
// worker pool is up, and the service is not draining. Load balancers and
// the distributed coordinator probe it via /readyz before routing work.
func (s *Service) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ready && !s.draining
}
