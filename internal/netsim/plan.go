// Package netsim injects deterministic network faults into HTTP
// clients. It is the network-layer sibling of cudasim's FaultPlan: where
// cudasim makes simulated GPUs fail, hang and throttle on a replayable
// schedule, netsim makes the coordinator↔worker HTTP path drop, delay,
// blackhole, partition and duplicate requests on one — so every messy
// cluster failure the paper's heterogeneous deployments hit (slow links,
// partitions, stale revenants) can be reproduced exactly, in unit tests,
// the e2e suite and live chaos drills, from a seed and a one-line plan.
//
// A plan is a comma-separated list of per-target clauses in the same
// spirit as the -faults DSL:
//
//	<target>:<kind>@<value>
//
// where target is the host:port a request is addressed to ("*" matches
// every target) and kind@value is one of
//
//	error@R          fail the request with a transport error, probability R in (0,1]
//	latency@D±J      delay the request by D with uniform jitter ±J (±J optional)
//	hang@T           blackhole: requests starting at elapsed time >= T never
//	                 complete (they block until the request context ends)
//	partition@T+D    requests in the window [T, T+D) fail immediately with a
//	                 connection error; +D optional (open-ended partition)
//	dup@R            deliver the request twice, probability R in (0,1] —
//	                 at-least-once delivery against idempotency handling
//
// Times are Go durations measured from the transport's first request
// (tests can override the clock), so "partition@3s+4s" means "partition
// this worker 3 seconds into the screen, heal 4 seconds later".
package netsim

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind is a fault clause's kind.
type Kind string

// The five fault kinds, in the order the transport applies them.
const (
	KindPartition Kind = "partition"
	KindHang      Kind = "hang"
	KindError     Kind = "error"
	KindLatency   Kind = "latency"
	KindDup       Kind = "dup"
)

// Rule is one parsed fault clause. Which value fields are meaningful
// depends on Kind.
type Rule struct {
	Target string // host:port the rule applies to; "*" matches every target
	Kind   Kind

	Rate   float64       // error, dup: per-request probability in (0,1]
	Base   time.Duration // latency: injected delay
	Jitter time.Duration // latency: uniform jitter, applied in [-Jitter, +Jitter]
	At     time.Duration // hang, partition: start of the fault window
	Dur    time.Duration // partition: window length; 0 = open-ended
}

// matches reports whether the rule applies to a request host.
func (r Rule) matches(host string) bool {
	return r.Target == "*" || r.Target == host
}

// value renders the clause's value part in canonical form.
func (r Rule) value() string {
	switch r.Kind {
	case KindError, KindDup:
		return strconv.FormatFloat(r.Rate, 'g', -1, 64)
	case KindLatency:
		if r.Jitter > 0 {
			return r.Base.String() + "±" + r.Jitter.String()
		}
		return r.Base.String()
	case KindHang:
		return r.At.String()
	case KindPartition:
		if r.Dur > 0 {
			return r.At.String() + "+" + r.Dur.String()
		}
		return r.At.String()
	}
	return ""
}

// String renders the clause in the canonical form ParsePlan accepts.
func (r Rule) String() string {
	return r.Target + ":" + string(r.Kind) + "@" + r.value()
}

// Plan is an ordered set of fault rules. Order is preserved: rules apply
// in plan order within each kind, and String round-trips through
// ParsePlan rule for rule.
type Plan struct {
	Rules []Rule
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool { return len(p.Rules) == 0 }

// String renders the plan in the canonical comma-separated clause form;
// ParsePlan(p.String()) reproduces p exactly.
func (p Plan) String() string {
	parts := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, ",")
}

// ParsePlan parses the fault-plan DSL. An empty spec is an empty plan.
// Targets may contain colons (host:port), so each clause is split at its
// LAST colon: everything before it is the target, everything after is
// kind@value.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		cut := strings.LastIndex(clause, ":")
		if cut <= 0 {
			return Plan{}, fmt.Errorf("netsim: bad fault clause %q (want target:kind@value)", clause)
		}
		target, rest := clause[:cut], clause[cut+1:]
		kindPart, valPart, ok := strings.Cut(rest, "@")
		if !ok {
			return Plan{}, fmt.Errorf("netsim: bad fault clause %q (missing @value)", clause)
		}
		r := Rule{Target: target, Kind: Kind(kindPart)}
		var err error
		switch r.Kind {
		case KindError, KindDup:
			r.Rate, err = parseRate(valPart)
		case KindLatency:
			r.Base, r.Jitter, err = parseLatency(valPart)
		case KindHang:
			r.At, err = parseAt(valPart)
		case KindPartition:
			r.At, r.Dur, err = parsePartition(valPart)
		default:
			err = fmt.Errorf("unknown fault kind %q (want error, latency, hang, partition or dup)", kindPart)
		}
		if err != nil {
			return Plan{}, fmt.Errorf("netsim: bad fault clause %q: %v", clause, err)
		}
		p.Rules = append(p.Rules, r)
	}
	return p, nil
}

func parseRate(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("rate %q is not a number", s)
	}
	if math.IsNaN(v) || v <= 0 || v > 1 {
		return 0, fmt.Errorf("rate %v must be in (0,1]", v)
	}
	return v, nil
}

func parseLatency(s string) (base, jitter time.Duration, err error) {
	basePart, jitPart, hasJitter := strings.Cut(s, "±")
	base, err = time.ParseDuration(basePart)
	if err != nil {
		return 0, 0, fmt.Errorf("latency %q is not a duration", basePart)
	}
	if base <= 0 {
		return 0, 0, fmt.Errorf("latency %v must be positive", base)
	}
	if hasJitter {
		jitter, err = time.ParseDuration(jitPart)
		if err != nil {
			return 0, 0, fmt.Errorf("jitter %q is not a duration", jitPart)
		}
		if jitter < 0 {
			return 0, 0, fmt.Errorf("jitter %v must be non-negative", jitter)
		}
	}
	return base, jitter, nil
}

func parseAt(s string) (time.Duration, error) {
	at, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("start %q is not a duration", s)
	}
	if at < 0 {
		return 0, fmt.Errorf("start %v must be non-negative", at)
	}
	return at, nil
}

func parsePartition(s string) (at, dur time.Duration, err error) {
	atPart, durPart, hasDur := strings.Cut(s, "+")
	at, err = parseAt(atPart)
	if err != nil {
		return 0, 0, err
	}
	if hasDur {
		dur, err = time.ParseDuration(durPart)
		if err != nil {
			return 0, 0, fmt.Errorf("duration %q is not a duration", durPart)
		}
		if dur <= 0 {
			return 0, 0, fmt.Errorf("duration %v must be positive", dur)
		}
	}
	return at, dur, nil
}
