package netsim

import (
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/metascreen/metascreen/internal/rng"
)

// InjectedError is a fault delivered instead of a response. It satisfies
// net.Error's shape (Timeout/Temporary) so error-classification code
// treats injected faults like the real transport failures they model:
// partitions look like refused connections, errors like flaky links.
type InjectedError struct {
	Kind   Kind
	Target string
	Seq    uint64 // per-target request ordinal the fault hit
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("netsim: injected %s on %s (request %d)", e.Kind, e.Target, e.Seq)
}

func (e *InjectedError) Timeout() bool   { return false }
func (e *InjectedError) Temporary() bool { return true }

// Decision is one fault the transport injected, in the order requests
// were admitted. With the same seed, plan and request sequence the
// decision log is identical run to run — the replay contract tests and
// postmortems rely on.
type Decision struct {
	Target string
	Kind   Kind
	Seq    uint64        // per-target request ordinal, starting at 0
	Delay  time.Duration // latency decisions: the injected delay
}

// maxDecisions bounds the in-memory decision log on long-running
// processes; past it, new decisions are counted but not stored.
const maxDecisions = 65536

// Config tunes a Transport.
type Config struct {
	// Seed drives every probabilistic decision. Decisions are a pure
	// function of (seed, target, per-target request ordinal), so they do
	// not depend on goroutine interleaving.
	Seed uint64
	// Base performs the real requests; nil = http.DefaultTransport.
	Base http.RoundTripper
	// Clock returns elapsed plan time. nil = wall time since the
	// transport's first request, which anchors time-windowed faults
	// (hang@T, partition@T+D) to the start of real traffic.
	Clock func() time.Duration
	// Logf, when set, receives one line per injected fault.
	Logf func(format string, args ...any)
}

// Transport is a fault-injecting http.RoundTripper. Rules apply in a
// fixed kind order per request — partition, hang, error, latency, dup —
// so a plan combining kinds behaves the same in every run.
type Transport struct {
	plan Plan
	cfg  Config
	base http.RoundTripper

	startOnce sync.Once
	start     time.Time

	mu        sync.Mutex
	seq       map[string]uint64
	decisions []Decision
	dropped   int64
}

// New builds a Transport injecting plan over cfg.Base.
func New(plan Plan, cfg Config) *Transport {
	base := cfg.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{plan: plan, cfg: cfg, base: base, seq: make(map[string]uint64)}
}

// Decisions returns a copy of the fault log so far.
func (t *Transport) Decisions() []Decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Decision(nil), t.decisions...)
}

// elapsed is the plan clock: injected, or wall time since first request.
func (t *Transport) elapsed() time.Duration {
	if t.cfg.Clock != nil {
		return t.cfg.Clock()
	}
	t.startOnce.Do(func() { t.start = time.Now() })
	return time.Since(t.start)
}

// next admits a request to a target and returns its per-target ordinal.
func (t *Transport) next(target string) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.seq[target]
	t.seq[target] = n + 1
	return n
}

func (t *Transport) record(d Decision) {
	t.mu.Lock()
	if len(t.decisions) < maxDecisions {
		t.decisions = append(t.decisions, d)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
	if t.cfg.Logf != nil {
		t.cfg.Logf("netsim: %s on %s (request %d, delay %v)", d.Kind, d.Target, d.Seq, d.Delay)
	}
}

// lane derives the deterministic random source for one decision: a pure
// function of seed, target, request ordinal and rule position, so
// concurrent requests to different targets cannot perturb each other's
// fault sequences.
func (t *Transport) lane(target string, seq, ruleIdx uint64) *rng.Source {
	h := fnv.New64a()
	io.WriteString(h, target)
	return rng.New(t.cfg.Seed ^ h.Sum64()).Split(seq).Split(ruleIdx)
}

// RoundTrip applies the plan's matching rules to one request.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	target := req.URL.Host
	var rules []Rule
	var idx []uint64 // plan positions, the per-rule decision lanes
	for i, r := range t.plan.Rules {
		if r.matches(target) {
			rules = append(rules, r)
			idx = append(idx, uint64(i))
		}
	}
	if len(rules) == 0 {
		return t.base.RoundTrip(req)
	}
	seq := t.next(target)
	now := t.elapsed()

	// Partition: fail fast inside the window, like a refused connection.
	for _, r := range rules {
		if r.Kind == KindPartition && now >= r.At && (r.Dur == 0 || now < r.At+r.Dur) {
			t.record(Decision{Target: target, Kind: KindPartition, Seq: seq})
			return nil, &InjectedError{Kind: KindPartition, Target: target, Seq: seq}
		}
	}
	// Hang: blackhole — the request never completes; only the caller's
	// context deadline gets it back. This is the fault that exposes
	// clients built without per-request timeouts.
	for _, r := range rules {
		if r.Kind == KindHang && now >= r.At {
			t.record(Decision{Target: target, Kind: KindHang, Seq: seq})
			<-req.Context().Done()
			return nil, req.Context().Err()
		}
	}
	// Error: probabilistic transport failure.
	for i, r := range rules {
		if r.Kind == KindError && t.lane(target, seq, idx[i]).Float64() < r.Rate {
			t.record(Decision{Target: target, Kind: KindError, Seq: seq})
			return nil, &InjectedError{Kind: KindError, Target: target, Seq: seq}
		}
	}
	// Latency: delay the request, respecting its context.
	for i, r := range rules {
		if r.Kind != KindLatency {
			continue
		}
		d := r.Base
		if r.Jitter > 0 {
			f := t.lane(target, seq, idx[i]).Float64() // [0,1)
			d += time.Duration((2*f - 1) * float64(r.Jitter))
		}
		if d <= 0 {
			continue
		}
		t.record(Decision{Target: target, Kind: KindLatency, Seq: seq, Delay: d})
		timer := time.NewTimer(d)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	// Dup: deliver the request twice — the extra delivery's response is
	// drained and discarded, the second is returned, modeling a network
	// that re-sends a request whose response was lost. Only requests
	// whose body can be replayed (no body, or GetBody set) duplicate.
	for i, r := range rules {
		if r.Kind != KindDup || t.lane(target, seq, idx[i]).Float64() >= r.Rate {
			continue
		}
		if req.Body != nil && req.GetBody == nil {
			break
		}
		first := req.Clone(req.Context())
		if req.GetBody != nil {
			b, err := req.GetBody()
			if err != nil {
				break
			}
			first.Body = b
		}
		t.record(Decision{Target: target, Kind: KindDup, Seq: seq})
		if resp, err := t.base.RoundTrip(first); err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
		}
		if req.GetBody != nil {
			b, err := req.GetBody()
			if err != nil {
				return nil, err
			}
			req.Body = b
		}
		break
	}
	return t.base.RoundTrip(req)
}
