package netsim

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// rtFunc adapts a function to http.RoundTripper for stub backends.
type rtFunc func(*http.Request) (*http.Response, error)

func (f rtFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// okBackend counts deliveries and returns 200 with the request body
// echoed, so dup tests can check both deliveries carried the payload.
func okBackend(calls *atomic.Int64, bodies *[]string) http.RoundTripper {
	return rtFunc(func(r *http.Request) (*http.Response, error) {
		calls.Add(1)
		var body string
		if r.Body != nil {
			b, _ := io.ReadAll(r.Body)
			r.Body.Close()
			body = string(b)
		}
		if bodies != nil {
			*bodies = append(*bodies, body)
		}
		return &http.Response{
			StatusCode: http.StatusOK,
			Body:       io.NopCloser(strings.NewReader(body)),
			Header:     make(http.Header),
		}, nil
	})
}

func mustParse(t *testing.T, spec string) Plan {
	t.Helper()
	p, err := ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func get(t *testing.T, tr *Transport, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tr.RoundTrip(req)
}

// TestDeterministicReplay: the tentpole determinism contract. The same
// seed and plan driven through the same request sequence produce the
// identical decision log, and a different seed produces a different one.
func TestDeterministicReplay(t *testing.T) {
	plan := mustParse(t, "w1:80:error@0.4,w1:80:dup@0.3,w1:80:latency@1ms±1ms,w2:80:error@0.5")
	run := func(seed uint64) []Decision {
		var calls atomic.Int64
		tr := New(plan, Config{
			Seed:  seed,
			Base:  okBackend(&calls, nil),
			Clock: func() time.Duration { return 0 },
		})
		for i := 0; i < 100; i++ {
			target := "http://w1:80/x"
			if i%3 == 0 {
				target = "http://w2:80/x"
			}
			if resp, err := get(t, tr, target); err == nil {
				resp.Body.Close()
			}
		}
		return tr.Decisions()
	}
	first, second := run(42), run(42)
	if len(first) == 0 {
		t.Fatal("plan injected no faults over 100 requests")
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("same seed+plan produced different fault sequences:\n%+v\nvs\n%+v", first, second)
	}
	if other := run(43); reflect.DeepEqual(first, other) {
		t.Error("different seeds produced the identical fault sequence")
	}
}

func TestPartitionWindow(t *testing.T) {
	var now atomic.Int64 // nanoseconds of plan time
	var calls atomic.Int64
	tr := New(mustParse(t, "w1:80:partition@4s+10s"), Config{
		Base:  okBackend(&calls, nil),
		Clock: func() time.Duration { return time.Duration(now.Load()) },
	})
	check := func(at time.Duration, wantErr bool) {
		t.Helper()
		now.Store(int64(at))
		resp, err := get(t, tr, "http://w1:80/x")
		if wantErr {
			var inj *InjectedError
			if !errors.As(err, &inj) || inj.Kind != KindPartition {
				t.Fatalf("at %v: got (%v, %v), want injected partition", at, resp, err)
			}
			return
		}
		if err != nil {
			t.Fatalf("at %v: unexpected error %v", at, err)
		}
		resp.Body.Close()
	}
	check(0, false)
	check(3999*time.Millisecond, false)
	check(4*time.Second, true)
	check(13999*time.Millisecond, true)
	check(14*time.Second, false) // healed
}

func TestHangHonorsContext(t *testing.T) {
	var calls atomic.Int64
	tr := New(mustParse(t, "*:hang@0s"), Config{Base: okBackend(&calls, nil)})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://w1:80/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = tr.RoundTrip(req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blackholed request returned %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("blackholed request took %v to honour a 50ms deadline", elapsed)
	}
	if calls.Load() != 0 {
		t.Error("blackholed request reached the backend")
	}
}

func TestDupDeliversTwice(t *testing.T) {
	var calls atomic.Int64
	var bodies []string
	tr := New(mustParse(t, "*:dup@1"), Config{Base: okBackend(&calls, &bodies)})
	req, err := http.NewRequest(http.MethodPost, "http://w1:80/x", bytes.NewReader([]byte("payload")))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if calls.Load() != 2 {
		t.Fatalf("dup@1 delivered %d times, want 2", calls.Load())
	}
	if !reflect.DeepEqual(bodies, []string{"payload", "payload"}) {
		t.Fatalf("deliveries carried bodies %q, want the payload twice", bodies)
	}
	if string(got) != "payload" {
		t.Fatalf("returned response echoed %q", got)
	}
}

func TestErrorRateCertain(t *testing.T) {
	var calls atomic.Int64
	tr := New(mustParse(t, "w1:80:error@1"), Config{Base: okBackend(&calls, nil)})
	for i := 0; i < 10; i++ {
		_, err := get(t, tr, "http://w1:80/x")
		var inj *InjectedError
		if !errors.As(err, &inj) || inj.Kind != KindError {
			t.Fatalf("request %d: got %v, want injected error", i, err)
		}
	}
	if calls.Load() != 0 {
		t.Error("error@1 let requests through")
	}
}

func TestLatencyInjected(t *testing.T) {
	var calls atomic.Int64
	tr := New(mustParse(t, "*:latency@30ms"), Config{Base: okBackend(&calls, nil)})
	start := time.Now()
	resp, err := get(t, tr, "http://w1:80/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("latency@30ms delayed only %v", elapsed)
	}
}

func TestTargetSelectivity(t *testing.T) {
	var calls atomic.Int64
	tr := New(mustParse(t, "w1:80:error@1"), Config{Base: okBackend(&calls, nil)})
	resp, err := get(t, tr, "http://w2:80/x")
	if err != nil {
		t.Fatalf("rule for w1:80 hit w2:80: %v", err)
	}
	resp.Body.Close()
	if _, err := get(t, tr, "http://w1:80/x"); err == nil {
		t.Fatal("rule for w1:80 did not fire on w1:80")
	}
}
