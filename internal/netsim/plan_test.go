package netsim

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func TestParsePlanClauses(t *testing.T) {
	cases := []struct {
		spec string
		want []Rule
	}{
		{"", nil},
		{" , ", nil},
		{"*:error@0.25", []Rule{{Target: "*", Kind: KindError, Rate: 0.25}}},
		{"127.0.0.1:8081:error@1", []Rule{{Target: "127.0.0.1:8081", Kind: KindError, Rate: 1}}},
		{"w1:latency@50ms", []Rule{{Target: "w1", Kind: KindLatency, Base: 50 * time.Millisecond}}},
		{"w1:latency@50ms±20ms", []Rule{{Target: "w1", Kind: KindLatency, Base: 50 * time.Millisecond, Jitter: 20 * time.Millisecond}}},
		{"w1:hang@0s", []Rule{{Target: "w1", Kind: KindHang}}},
		{"w1:hang@2s", []Rule{{Target: "w1", Kind: KindHang, At: 2 * time.Second}}},
		{"w1:partition@3s", []Rule{{Target: "w1", Kind: KindPartition, At: 3 * time.Second}}},
		{"w1:partition@3s+4s", []Rule{{Target: "w1", Kind: KindPartition, At: 3 * time.Second, Dur: 4 * time.Second}}},
		{"w1:dup@0.5", []Rule{{Target: "w1", Kind: KindDup, Rate: 0.5}}},
		{
			"a:1:error@0.1, b:2:partition@1s+2s ,*:dup@0.3",
			[]Rule{
				{Target: "a:1", Kind: KindError, Rate: 0.1},
				{Target: "b:2", Kind: KindPartition, At: time.Second, Dur: 2 * time.Second},
				{Target: "*", Kind: KindDup, Rate: 0.3},
			},
		},
	}
	for _, c := range cases {
		p, err := ParsePlan(c.spec)
		if err != nil {
			t.Errorf("ParsePlan(%q): %v", c.spec, err)
			continue
		}
		if !reflect.DeepEqual(p.Rules, c.want) {
			t.Errorf("ParsePlan(%q) = %+v, want %+v", c.spec, p.Rules, c.want)
		}
	}
}

func TestParsePlanRejects(t *testing.T) {
	bad := []string{
		"nonsense",
		"w1:zap@1",          // unknown kind
		"w1:error",          // missing @value
		"w1:error@0",        // rate lower bound
		"w1:error@1.5",      // rate upper bound
		"w1:error@-0.1",     // negative rate
		"w1:error@x",        // non-numeric rate
		"w1:dup@0",          // dup rate bound
		"w1:dup@2",          // dup rate bound
		"w1:latency@0s",     // latency must be positive
		"w1:latency@-5ms",   // negative latency
		"w1:latency@5ms±-1ms", // negative jitter
		"w1:latency@abc",    // non-duration
		"w1:hang@-1s",       // negative start
		"w1:hang@7",         // bare number is not a duration
		"w1:partition@-1s",  // negative start
		"w1:partition@1s+0s", // window must be positive
		"w1:partition@1s+-2s",
		":error@0.5",  // empty target
		"error@0.5",   // no target separator
		"w1:error@0.5,bogus", // one bad clause poisons the plan
	}
	for _, spec := range bad {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted a malformed spec", spec)
		}
	}
}

// randomRule generates a valid rule from a seeded source, for the
// round-trip property: every generatable plan must print and re-parse to
// itself.
func randomRule(r *rand.Rand) Rule {
	targets := []string{"*", "w1", "127.0.0.1:8081", "node-3:9999"}
	rule := Rule{Target: targets[r.Intn(len(targets))]}
	// Durations in whole milliseconds: Duration.String round-trips any
	// duration, but keeping values readable mirrors real plans.
	ms := func(max int) time.Duration { return time.Duration(1+r.Intn(max)) * time.Millisecond }
	switch r.Intn(5) {
	case 0:
		rule.Kind, rule.Rate = KindError, float64(1+r.Intn(1000))/1000
	case 1:
		rule.Kind, rule.Base = KindLatency, ms(5000)
		if r.Intn(2) == 0 {
			rule.Jitter = ms(1000)
		}
	case 2:
		rule.Kind, rule.At = KindHang, time.Duration(r.Intn(10000))*time.Millisecond
	case 3:
		rule.Kind, rule.At = KindPartition, time.Duration(r.Intn(10000))*time.Millisecond
		if r.Intn(2) == 0 {
			rule.Dur = ms(10000)
		}
	default:
		rule.Kind, rule.Rate = KindDup, float64(1+r.Intn(1000))/1000
	}
	return rule
}

func TestPlanRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		var p Plan
		for n := r.Intn(6); n > 0; n-- {
			p.Rules = append(p.Rules, randomRule(r))
		}
		spec := p.String()
		got, err := ParsePlan(spec)
		if err != nil {
			t.Fatalf("round %d: ParsePlan(%q): %v", i, spec, err)
		}
		if !reflect.DeepEqual(got.Rules, p.Rules) {
			t.Fatalf("round %d: %q round-tripped to %+v, want %+v", i, spec, got.Rules, p.Rules)
		}
	}
}

// FuzzParsePlan: the parser must never panic, and every spec it accepts
// must render canonically and re-parse to the identical plan.
func FuzzParsePlan(f *testing.F) {
	for _, seed := range []string{
		"",
		"*:error@0.25",
		"127.0.0.1:8081:partition@3s+4s,127.0.0.1:8081:latency@20ms±10ms",
		"w1:hang@2s,w2:dup@0.5",
		"w1:latency@50ms±20ms",
		"w1:error@1,w1:error@0.000001",
		"::::@@@@±±±+++",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParsePlan(spec)
		if err != nil {
			return
		}
		canon := p.String()
		again, err := ParsePlan(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted spec %q does not re-parse: %v", canon, spec, err)
		}
		if !reflect.DeepEqual(again.Rules, p.Rules) {
			t.Fatalf("spec %q: canonical %q re-parsed to %+v, want %+v", spec, canon, again.Rules, p.Rules)
		}
	})
}
