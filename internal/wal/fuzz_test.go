package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedCorpus builds the seeds the issue calls for: valid journals,
// truncated tails, bit-flipped payloads and headers, and interleaved
// valid/garbage runs.
func fuzzSeedCorpus() [][]byte {
	valid := AppendFrame(nil, []byte(`{"type":"submitted","job":"job-000001"}`))
	valid = AppendFrame(valid, []byte(`{"type":"started","job":"job-000001"}`))
	valid = AppendFrame(valid, []byte(`{"type":"terminal","job":"job-000001"}`))

	truncated := append([]byte(nil), valid[:len(valid)-5]...)

	flipped := append([]byte(nil), valid...)
	flipped[headerSize+3] ^= 0x10 // payload bit of the first record

	hdrFlipped := append([]byte(nil), valid...)
	hdrFlipped[1] ^= 0x80 // length field of the first record

	interleaved := append([]byte(nil), valid[:len(valid)/3]...)
	interleaved = append(interleaved, []byte("garbage in the middle")...)
	interleaved = append(interleaved, valid...)

	return [][]byte{
		nil,
		valid,
		truncated,
		flipped,
		hdrFlipped,
		interleaved,
		[]byte("not a journal at all"),
		bytes.Repeat([]byte{0xff}, 64),
		bytes.Repeat([]byte{0x00}, 64),
	}
}

// FuzzJournalReplay feeds arbitrary bytes through recovery and asserts the
// package's central robustness contract: replay never panics, always
// recovers a consistent prefix (re-encoding the recovered records
// reproduces exactly the bytes it accepted), and Open over the same bytes
// agrees with the pure scan and leaves an appendable journal behind.
func FuzzJournalReplay(f *testing.F) {
	for _, seed := range fuzzSeedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid := ScanRecords(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid prefix %d out of range [0,%d]", valid, len(data))
		}
		var reenc []byte
		for _, rec := range recs {
			reenc = AppendFrame(reenc, rec)
		}
		if !bytes.Equal(reenc, data[:valid]) {
			t.Fatalf("re-encoded prefix differs from accepted bytes (%d records, %d bytes)",
				len(recs), valid)
		}
		// Scanning the accepted prefix again is a fixed point.
		again, validAgain := ScanRecords(data[:valid])
		if validAgain != valid || len(again) != len(recs) {
			t.Fatalf("rescan of valid prefix: %d records/%d bytes, want %d/%d",
				len(again), validAgain, len(recs), valid)
		}

		// Full recovery path: write the bytes as a segment, Open, Replay.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, info, err := Open(dir, Options{Policy: SyncNever})
		if err != nil {
			t.Fatalf("Open on fuzzed journal: %v", err)
		}
		defer j.Close()
		if info.Records != len(recs) {
			t.Fatalf("Open recovered %d records, scan found %d", info.Records, len(recs))
		}
		if info.TruncatedBytes != int64(len(data)-valid) {
			t.Fatalf("Open truncated %d bytes, want %d", info.TruncatedBytes, len(data)-valid)
		}
		n := 0
		if err := j.Replay(func(rec []byte) error {
			if !bytes.Equal(rec, recs[n]) {
				t.Fatalf("replayed record %d differs from scan", n)
			}
			n++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if n != len(recs) {
			t.Fatalf("replayed %d records, want %d", n, len(recs))
		}
		// The recovered journal accepts appends.
		if err := j.Append([]byte("post-fuzz")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
	})
}
