package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/metascreen/metascreen/internal/fsim"
)

// reopen closes j and opens the same directory again.
func reopen(t *testing.T, j *Journal, dir string, opts Options) (*Journal, RecoveryInfo) {
	t.Helper()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	nj, info, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return nj, info
}

// replayAll collects every record.
func replayAll(t *testing.T, j *Journal) [][]byte {
	t.Helper()
	var recs [][]byte
	if err := j.Replay(func(rec []byte) error {
		cp := make([]byte, len(rec))
		copy(cp, rec)
		recs = append(recs, cp)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 0 || info.Segments != 1 {
		t.Fatalf("fresh journal recovery = %+v", info)
	}
	want := [][]byte{[]byte(`{"a":1}`), []byte(""), []byte(`{"b":2}`), bytes.Repeat([]byte("x"), 4096)}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	got := replayAll(t, j)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("record %d: %q != %q", i, got[i], want[i])
		}
	}

	// Reopen: everything survives, byte for byte.
	j, info = reopen(t, j, dir, Options{})
	defer j.Close()
	if info.Records != len(want) || info.TruncatedBytes != 0 {
		t.Fatalf("recovery after clean close = %+v", info)
	}
	got = replayAll(t, j)
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("post-reopen record %d differs", i)
		}
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{SegmentBytes: 64, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		rec := []byte(fmt.Sprintf("record-%02d-padding-padding", i))
		want = append(want, rec)
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(fsim.OSFS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("no rotation happened: %v", segs)
	}
	got := replayAll(t, j)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records across segments, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("record %d lost order across rotation", i)
		}
	}
	j, info := reopen(t, j, dir, Options{SegmentBytes: 64})
	defer j.Close()
	if info.Records != len(want) || info.Segments != len(segs) {
		t.Errorf("recovery across segments = %+v, want %d records in %d segments",
			info, len(want), len(segs))
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a partial frame at the tail.
	path := filepath.Join(dir, segmentName(1))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := AppendFrame(nil, []byte("never finished"))
	if _, err := f.Write(torn[:len(torn)-3]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var warned bool
	j2, info, err := Open(dir, Options{Logf: func(string, ...any) { warned = true }})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if info.Records != 3 {
		t.Errorf("recovered %d records, want 3", info.Records)
	}
	if info.TruncatedBytes != int64(len(torn)-3) {
		t.Errorf("truncated %d bytes, want %d", info.TruncatedBytes, len(torn)-3)
	}
	if !warned {
		t.Error("torn tail recovered silently, want a warning")
	}
	// The tail really is gone from disk, and appends continue cleanly.
	if err := j2.Append([]byte("after-recovery")); err != nil {
		t.Fatal(err)
	}
	recs := replayAll(t, j2)
	if len(recs) != 4 || string(recs[3]) != "after-recovery" {
		t.Fatalf("post-recovery replay = %d records (%q last)", len(recs), recs[len(recs)-1])
	}
}

func TestBitFlipDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{SegmentBytes: 48, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := j.Append([]byte(fmt.Sprintf("record-number-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := listSegments(fsim.OSFS(), dir)
	if len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %v", segs)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload bit in the second segment: its prefix survives, the
	// rest of that segment and every later segment are dropped.
	path := filepath.Join(dir, segmentName(segs[1]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, info, err := Open(dir, Options{SegmentBytes: 48})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if info.QuarantinedSegments != len(segs)-2 {
		t.Errorf("quarantined %d segments, want %d", info.QuarantinedSegments, len(segs)-2)
	}
	if info.TruncatedBytes == 0 {
		t.Error("bit flip not counted as truncation")
	}
	recs := replayAll(t, j2)
	if len(recs) != info.Records {
		t.Fatalf("replay sees %d records, recovery reported %d", len(recs), info.Records)
	}
	// The prefix is intact and in order.
	for i, rec := range recs {
		if want := fmt.Sprintf("record-number-%02d", i); string(rec) != want {
			t.Errorf("record %d = %q, want %q", i, rec, want)
		}
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{SegmentBytes: 64, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := j.Append([]byte(fmt.Sprintf("history-%02d-padding", i))); err != nil {
			t.Fatal(err)
		}
	}
	before := j.Size()
	live := [][]byte{[]byte("snap-a"), []byte("snap-b")}
	if err := j.Compact(live); err != nil {
		t.Fatal(err)
	}
	if j.Size() >= before {
		t.Errorf("size %d not reduced from %d", j.Size(), before)
	}
	segs, _ := listSegments(fsim.OSFS(), dir)
	if len(segs) != 1 {
		t.Fatalf("compaction left %v segments", segs)
	}
	// Replay is the snapshot, and appends continue after it.
	if err := j.Append([]byte("post-compact")); err != nil {
		t.Fatal(err)
	}
	recs := replayAll(t, j)
	want := []string{"snap-a", "snap-b", "post-compact"}
	if len(recs) != len(want) {
		t.Fatalf("replay after compact = %d records, want %d", len(recs), len(want))
	}
	for i, w := range want {
		if string(recs[i]) != w {
			t.Errorf("record %d = %q, want %q", i, recs[i], w)
		}
	}
	// Survives reopen.
	j, info := reopen(t, j, dir, Options{})
	defer j.Close()
	if info.Records != 3 {
		t.Errorf("recovery after compaction = %+v", info)
	}
}

func TestOpenRemovesStaleTemp(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, segmentName(7)+".tmp")
	if err := os.WriteFile(stale, []byte("half a compaction"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale compaction temp file survived Open")
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"", SyncAlways, true},
		{"interval", SyncInterval, true},
		{"never", SyncNever, true},
		{"ALWAYS", SyncAlways, true},
		{"sometimes", 0, false},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		back, err := ParseSyncPolicy(p.String())
		if err != nil || back != p {
			t.Errorf("round trip %v -> %q -> %v, %v", p, p.String(), back, err)
		}
	}

	// Each policy still journals durably enough to survive a clean close.
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		dir := t.TempDir()
		j, _, err := Open(dir, Options{Policy: p, SyncInterval: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := j.Append([]byte("r")); err != nil {
				t.Fatal(err)
			}
		}
		j, info := reopen(t, j, dir, Options{Policy: p})
		j.Close()
		if info.Records != 5 {
			t.Errorf("policy %v: %d records after reopen", p, info.Records)
		}
	}
}

func TestAppendTooLarge(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Error("oversized record accepted")
	}
}

func TestClosedJournalRefusesWrites(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("late")); err == nil {
		t.Error("append after close accepted")
	}
	if err := j.Compact(nil); err == nil {
		t.Error("compact after close accepted")
	}
	if err := j.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}
