// Package wal is an append-only write-ahead journal: length+CRC32-framed
// records in rotated segment files, with a configurable fsync policy and
// torn-tail recovery. The screening service journals job lifecycle events
// through it so a crashed or SIGKILLed vsserved rebuilds its job table on
// the next boot instead of losing every queued and running screen.
//
// The durability contracts:
//
//   - A record either replays whole or not at all: each record carries the
//     CRC32 of its payload, so a torn write (crash mid-append) or a
//     bit-flipped tail is detected, truncated with a warning, and never
//     replayed corrupt — recovery yields the longest valid prefix.
//   - Open never panics on damaged input; any file content, including
//     fuzz-generated garbage, recovers to a consistent journal (see
//     FuzzJournalReplay). Corrupt tail bytes and segments that followed a
//     corrupt record are quarantined under <dir>/quarantine for
//     post-mortem, never silently deleted.
//   - Appends go to the newest segment; segments rotate at SegmentBytes so
//     compaction can atomically replace history (temp file + rename +
//     directory fsync) with a snapshot of the live records without
//     rewriting unbounded data.
//   - A write or fsync failure fail-stops the journal (fsyncgate
//     semantics): after a failed fsync the kernel may have dropped the
//     dirty pages, so retrying the same fd can report success for data
//     that never reached the platter. Every Append after a failure returns
//     the sticky error until Recover reopens the segment from its last
//     acknowledged size and proves a fresh fsync works.
//
// All file I/O goes through an injectable fsim.FS, so the storage chaos
// plans (-disk-chaos) and the crash-point explorer exercise these paths
// deterministically.
//
// Records are opaque bytes to this package; the service stores one JSON
// object per record (JSONL with framing).
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/metascreen/metascreen/internal/fsim"
)

const (
	// headerSize frames each record: 4-byte little-endian payload length
	// followed by the 4-byte IEEE CRC32 of the payload.
	headerSize = 8
	// MaxRecordBytes bounds one record; a corrupt length field beyond it is
	// treated as a damaged tail, not an allocation request.
	MaxRecordBytes = 16 << 20
	// defaultSegmentBytes rotates segments at 8 MiB.
	defaultSegmentBytes = 8 << 20
	// defaultSyncInterval is the SyncInterval policy's default cadence.
	defaultSyncInterval = 100 * time.Millisecond
	// quarantineDir is the subdirectory corrupt segments and tails are
	// moved into during recovery, preserved for post-mortem.
	quarantineDir = "quarantine"
)

// SyncPolicy says when appends reach the disk platter.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: no acknowledged record is ever
	// lost to a crash. The default, and the slowest.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per Options.SyncInterval; a crash
	// loses at most that window of acknowledged records.
	SyncInterval
	// SyncNever leaves flushing to the OS; a crash can lose everything
	// since the last kernel writeback. For tests and throwaway runs.
	SyncNever
)

// String names the policy the way ParseSyncPolicy spells it.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy maps the -fsync flag spelling to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always", "":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
}

// Options configures a journal.
type Options struct {
	// SegmentBytes rotates the active segment when it would exceed this
	// size; 0 means 8 MiB.
	SegmentBytes int64
	// Policy is the fsync policy; the zero value is SyncAlways.
	Policy SyncPolicy
	// SyncInterval is the SyncInterval policy's cadence; 0 means 100ms.
	SyncInterval time.Duration
	// Logf receives recovery warnings (torn tails, quarantined segments)
	// and I/O error reports; nil discards them.
	Logf func(format string, args ...any)
	// FS is the filesystem the journal writes through; nil means the real
	// one (fsim.OSFS()). Chaos tests and the crash-point explorer inject a
	// fsim.Faulty here.
	FS fsim.FS
	// OnIOError observes every I/O failure the journal absorbs or
	// surfaces, labeled by operation ("append", "sync", "dirsync",
	// "remove", "quarantine", ...). The service counts these in
	// wal_io_errors_total. Nil ignores.
	OnIOError func(op string, err error)
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = defaultSyncInterval
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.FS == nil {
		o.FS = fsim.OSFS()
	}
	if o.OnIOError == nil {
		o.OnIOError = func(string, error) {}
	}
	return o
}

// RecoveryInfo reports what Open found and repaired.
type RecoveryInfo struct {
	// Segments is the number of journal segments after recovery.
	Segments int
	// Records is the number of valid records available for replay.
	Records int
	// TruncatedBytes counts bytes dropped from a torn or corrupt tail
	// (preserved under quarantine/ as <segment>.tail).
	TruncatedBytes int64
	// QuarantinedSegments counts whole segments moved to quarantine/
	// because they followed a corrupt record (replay keeps a consistent
	// prefix).
	QuarantinedSegments int
}

// Journal is an open write-ahead journal. Append, Sync, Compact and Close
// are safe for concurrent use.
type Journal struct {
	mu   sync.Mutex
	dir  string
	opts Options
	fs   fsim.FS

	f        fsim.File // active segment, opened for append; nil while failed
	seg      int       // active segment index
	segSize  int64     // active segment's acknowledged (durable-intent) size
	total    int64     // all segments' bytes
	lastSync time.Time
	failed   error // sticky fail-stop cause; nil when healthy
	closed   bool
}

// segmentName formats a segment file name; indices are dense but need not
// start at 1 (compaction advances them).
func segmentName(idx int) string { return fmt.Sprintf("seg-%08d.wal", idx) }

// listSegments returns the sorted segment indices present in dir.
func listSegments(fs fsim.FS, dir string) ([]int, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var idx []int
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "seg-%08d.wal", &n); err == nil &&
			e.Name() == segmentName(n) {
			idx = append(idx, n)
		}
	}
	sort.Ints(idx)
	return idx, nil
}

// ioError reports one absorbed or surfaced I/O failure.
func (j *Journal) ioError(op string, err error) {
	j.opts.OnIOError(op, err)
	j.opts.Logf("wal: %s failed: %v", op, err)
}

// Open opens (or creates) the journal in dir, recovering from any torn or
// corrupt tail: the damaged suffix is truncated with a warning — its bytes
// preserved under quarantine/ — and later segments are quarantined, so the
// surviving records form the longest valid prefix of what was written. It
// never panics on damaged input.
func Open(dir string, opts Options) (*Journal, RecoveryInfo, error) {
	opts = opts.withDefaults()
	fs := opts.FS
	var info RecoveryInfo
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, info, fmt.Errorf("wal: %w", err)
	}
	// Leftover temp files are failed compactions; they were never live.
	if tmps, err := fs.Glob(filepath.Join(dir, "*.tmp")); err == nil {
		for _, t := range tmps {
			if rerr := fs.Remove(t); rerr != nil {
				opts.OnIOError("remove", rerr)
				opts.Logf("wal: removing stale temp %s failed: %v", t, rerr)
			}
		}
	}
	segs, err := listSegments(fs, dir)
	if err != nil {
		return nil, info, fmt.Errorf("wal: %w", err)
	}
	if len(segs) == 0 {
		segs = []int{1}
		f, err := fs.OpenFile(filepath.Join(dir, segmentName(1)),
			os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, info, fmt.Errorf("wal: %w", err)
		}
		f.Close()
	}

	// Scan segments in order; the first invalid record ends the valid
	// prefix — its segment is truncated there (tail bytes quarantined) and
	// later segments moved aside whole.
	j := &Journal{dir: dir, opts: opts, fs: fs, lastSync: time.Now()}
	active := 0 // position in segs of the segment that ends the prefix
	for k, idx := range segs {
		path := filepath.Join(dir, segmentName(idx))
		data, err := fs.ReadFile(path)
		if err != nil {
			return nil, info, fmt.Errorf("wal: %w", err)
		}
		recs, valid := ScanRecords(data)
		info.Records += len(recs)
		j.total += int64(valid)
		active = k
		if valid < len(data) {
			info.TruncatedBytes += int64(len(data) - valid)
			opts.Logf("wal: recovery warning: segment %s: quarantining %d corrupt tail bytes (kept %d records)",
				segmentName(idx), len(data)-valid, len(recs))
			quarantineBytes(fs, opts, dir, segmentName(idx)+".tail", data[valid:])
			if err := fs.Truncate(path, int64(valid)); err != nil {
				return nil, info, fmt.Errorf("wal: truncate %s: %w", segmentName(idx), err)
			}
			for _, later := range segs[k+1:] {
				info.QuarantinedSegments++
				opts.Logf("wal: recovery warning: quarantining segment %s after corrupt record in %s",
					segmentName(later), segmentName(idx))
				quarantineSegment(fs, opts, dir, segmentName(later))
			}
			break
		}
	}
	segs = segs[:active+1]
	info.Segments = len(segs)

	j.seg = segs[len(segs)-1]
	f, err := fs.OpenFile(filepath.Join(dir, segmentName(j.seg)),
		os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, info, fmt.Errorf("wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, info, fmt.Errorf("wal: %w", err)
	}
	j.f = f
	j.segSize = st.Size()
	if info.TruncatedBytes > 0 || info.QuarantinedSegments > 0 {
		if err := fs.SyncDir(dir); err != nil {
			j.ioError("dirsync", err)
		}
	}
	return j, info, nil
}

// quarantineBytes preserves corrupt bytes under dir/quarantine/name for
// post-mortem. Best effort: a failure is reported, not fatal — losing the
// post-mortem copy must never block recovery.
func quarantineBytes(fs fsim.FS, opts Options, dir, name string, data []byte) {
	qdir := filepath.Join(dir, quarantineDir)
	if err := fs.MkdirAll(qdir, 0o755); err != nil {
		opts.OnIOError("quarantine", err)
		return
	}
	f, err := fs.OpenFile(filepath.Join(qdir, name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		opts.OnIOError("quarantine", err)
		return
	}
	if _, err := f.Write(data); err != nil {
		opts.OnIOError("quarantine", err)
	}
	f.Close()
}

// quarantineSegment moves a whole segment into dir/quarantine. If the
// move fails the segment is removed instead — it must not be replayed,
// because its records follow a corrupt record in an earlier segment.
func quarantineSegment(fs fsim.FS, opts Options, dir, name string) {
	qdir := filepath.Join(dir, quarantineDir)
	if err := fs.MkdirAll(qdir, 0o755); err == nil {
		if err := fs.Rename(filepath.Join(dir, name), filepath.Join(qdir, name)); err == nil {
			return
		} else {
			opts.OnIOError("quarantine", err)
		}
	} else {
		opts.OnIOError("quarantine", err)
	}
	if err := fs.Remove(filepath.Join(dir, name)); err != nil {
		opts.OnIOError("remove", err)
		opts.Logf("wal: could not quarantine or remove segment %s: %v", name, err)
	}
}

// ScanRecords parses framed records out of raw segment bytes, returning
// the decoded payloads and the byte length of the valid prefix. It stops
// at the first truncated or corrupt record and never panics; re-encoding
// the returned records reproduces data[:validLen] exactly.
func ScanRecords(data []byte) (records [][]byte, validLen int) {
	off := 0
	for {
		if len(data)-off < headerSize {
			return records, off
		}
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > MaxRecordBytes || len(data)-off-headerSize < int(n) {
			return records, off
		}
		payload := data[off+headerSize : off+headerSize+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return records, off
		}
		rec := make([]byte, n)
		copy(rec, payload)
		records = append(records, rec)
		off += headerSize + int(n)
	}
}

// AppendFrame appends one framed record to buf and returns the extended
// buffer — the exact bytes Append writes for the payload.
func AppendFrame(buf, payload []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// Append journals one record, rotating the segment and syncing per the
// configured policy. After a write or sync failure the journal is
// fail-stopped: every further Append returns the sticky error until
// Recover succeeds.
func (j *Journal) Append(payload []byte) error {
	if int64(len(payload)) > MaxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds limit %d", len(payload), int64(MaxRecordBytes))
	}
	frame := AppendFrame(nil, payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("wal: journal closed")
	}
	if j.failed != nil {
		return fmt.Errorf("wal: journal fail-stopped: %w", j.failed)
	}
	if j.segSize > 0 && j.segSize+int64(len(frame)) > j.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := j.f.Write(frame); err != nil {
		// The segment now holds an unacknowledged (possibly torn) suffix;
		// fail-stop. Recover truncates back to segSize — the last size
		// whose bytes were acknowledged.
		j.failStopLocked("append", err)
		return fmt.Errorf("wal: append: %w", err)
	}
	j.segSize += int64(len(frame))
	j.total += int64(len(frame))
	if err := j.maybeSyncLocked(); err != nil {
		// The append was not acknowledged: exclude its frame from the
		// acknowledged size so Recover truncates it away rather than
		// replaying a record whose durability is unknown.
		j.segSize -= int64(len(frame))
		j.total -= int64(len(frame))
		return err
	}
	return nil
}

// failStopLocked records the sticky failure. Caller holds j.mu.
func (j *Journal) failStopLocked(op string, err error) {
	j.failed = err
	j.ioError(op, err)
	j.opts.Logf("wal: fail-stop on segment %s after %s failure: %v", segmentName(j.seg), op, err)
}

// Failed returns the sticky fail-stop cause, nil while healthy.
func (j *Journal) Failed() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.failed
}

// Recover attempts to return a fail-stopped journal to service after the
// underlying condition clears (disk space freed, transient controller
// error gone). Per fsyncgate semantics the poisoned fd is abandoned, not
// retried: the active segment is truncated back to its last acknowledged
// size, reopened fresh, and a probe fsync of both the file and the
// directory must succeed before appends are accepted again. A no-op on a
// healthy journal.
func (j *Journal) Recover() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("wal: journal closed")
	}
	if j.failed == nil {
		return nil
	}
	path := filepath.Join(j.dir, segmentName(j.seg))
	if j.f != nil {
		j.f.Close() // abandon the poisoned fd; its error tells us nothing new
		j.f = nil
	}
	if err := j.fs.Truncate(path, j.segSize); err != nil {
		j.ioError("truncate", err)
		return fmt.Errorf("wal: recover truncate: %w", err)
	}
	f, err := j.fs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		j.ioError("reopen", err)
		return fmt.Errorf("wal: recover reopen: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		j.ioError("sync", err)
		return fmt.Errorf("wal: recover probe sync: %w", err)
	}
	if err := j.fs.SyncDir(j.dir); err != nil {
		f.Close()
		j.ioError("dirsync", err)
		return fmt.Errorf("wal: recover dir sync: %w", err)
	}
	j.f = f
	j.failed = nil
	j.lastSync = time.Now()
	j.opts.Logf("wal: recovered segment %s at %d bytes", segmentName(j.seg), j.segSize)
	return nil
}

// rotateLocked seals the active segment and starts the next one.
func (j *Journal) rotateLocked() error {
	if err := j.f.Sync(); err != nil {
		j.failStopLocked("sync", err)
		return fmt.Errorf("wal: rotate sync: %w", err)
	}
	if err := j.f.Close(); err != nil {
		j.failStopLocked("close", err)
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	j.seg++
	j.segSize = 0
	f, err := j.fs.OpenFile(filepath.Join(j.dir, segmentName(j.seg)),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		j.f = nil
		j.failStopLocked("rotate", err)
		return fmt.Errorf("wal: rotate: %w", err)
	}
	j.f = f
	if err := j.fs.SyncDir(j.dir); err != nil {
		// The new segment's dir entry may not survive a power loss; records
		// appended to it would vanish. Fail-stop until Recover proves the
		// directory syncs.
		j.failStopLocked("dirsync", err)
		return fmt.Errorf("wal: rotate dir sync: %w", err)
	}
	return nil
}

// maybeSyncLocked applies the fsync policy after an append.
func (j *Journal) maybeSyncLocked() error {
	switch j.opts.Policy {
	case SyncAlways:
		return j.syncLocked()
	case SyncInterval:
		if time.Since(j.lastSync) >= j.opts.SyncInterval {
			return j.syncLocked()
		}
	}
	return nil
}

func (j *Journal) syncLocked() error {
	if err := j.f.Sync(); err != nil {
		// fsyncgate: after a failed fsync the dirty pages may already be
		// gone; a retry that reports success proves nothing. Fail-stop and
		// make Recover reopen from the last acknowledged size.
		j.failStopLocked("sync", err)
		return fmt.Errorf("wal: sync: %w", err)
	}
	j.lastSync = time.Now()
	return nil
}

// Sync forces an fsync regardless of policy.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	if j.failed != nil {
		return fmt.Errorf("wal: journal fail-stopped: %w", j.failed)
	}
	return j.syncLocked()
}

// Size is the journal's on-disk byte size across all segments.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total
}

// Replay streams every record, oldest first, to fn; a non-nil fn error
// stops the replay and is returned. The records are the valid prefix Open
// recovered (concurrent Appends during a replay may or may not be seen).
func (j *Journal) Replay(fn func(rec []byte) error) error {
	j.mu.Lock()
	dir, fs := j.dir, j.fs
	j.mu.Unlock()
	segs, err := listSegments(fs, dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	for _, idx := range segs {
		data, err := fs.ReadFile(filepath.Join(dir, segmentName(idx)))
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		recs, _ := ScanRecords(data)
		for _, rec := range recs {
			if err := fn(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// Compact atomically replaces the journal's history with the given live
// records: they are written to a temp file, fsynced, renamed into place as
// the next segment, and the directory is fsynced — only then are the old
// segments deleted. A crash at any point leaves either the old history, or
// the old history plus the snapshot — callers' records must therefore be
// last-write-wins (the service journals full job snapshots), which makes
// both replays converge.
func (j *Journal) Compact(live [][]byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("wal: journal closed")
	}
	if j.failed != nil {
		return fmt.Errorf("wal: journal fail-stopped: %w", j.failed)
	}
	newIdx := j.seg + 1
	newPath := filepath.Join(j.dir, segmentName(newIdx))
	tmp := newPath + ".tmp"
	f, err := j.fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	discard := func() {
		if rerr := j.fs.Remove(tmp); rerr != nil {
			j.ioError("remove", rerr)
		}
	}
	var buf []byte
	for _, rec := range live {
		buf = AppendFrame(buf, rec)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		discard()
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		discard()
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		discard()
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := j.fs.Rename(tmp, newPath); err != nil {
		discard()
		return fmt.Errorf("wal: compact: %w", err)
	}
	// An atomic replace is not durable until the directory entry is: a
	// crash here could resurrect the old name order on some filesystems.
	// The snapshot must be durably in place before history is retired.
	if err := j.fs.SyncDir(j.dir); err != nil {
		j.ioError("dirsync", err)
		return fmt.Errorf("wal: compact dir sync: %w", err)
	}

	// The snapshot is durable; retire the history it replaces. Failures
	// here are absorbed (an orphan old segment is harmless: replay of old
	// events followed by the snapshot converges on the snapshot) but
	// logged and counted — silent leaks hide failing disks.
	oldSeg := j.seg
	if cerr := j.f.Close(); cerr != nil {
		j.ioError("close", cerr)
	}
	j.f = nil
	segs, err := listSegments(j.fs, j.dir)
	if err == nil {
		for _, idx := range segs {
			if idx <= oldSeg {
				if rerr := j.fs.Remove(filepath.Join(j.dir, segmentName(idx))); rerr != nil {
					j.ioError("remove", rerr)
				}
			}
		}
	}
	if err := j.fs.SyncDir(j.dir); err != nil {
		j.ioError("dirsync", err)
	}

	nf, err := j.fs.OpenFile(newPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// No usable fd: the journal is fail-stopped until Recover reopens.
		j.segSize = int64(len(buf))
		j.total = int64(len(buf))
		j.seg = newIdx
		j.failStopLocked("reopen", err)
		return fmt.Errorf("wal: compact reopen: %w", err)
	}
	j.f = nf
	j.seg = newIdx
	j.segSize = int64(len(buf))
	j.total = int64(len(buf))
	return nil
}

// Close syncs and closes the journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.f == nil {
		return nil
	}
	var serr error
	if j.failed == nil {
		serr = j.f.Sync()
	}
	cerr := j.f.Close()
	if serr != nil {
		return fmt.Errorf("wal: close sync: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("wal: close: %w", cerr)
	}
	return nil
}
