// Package wal is an append-only write-ahead journal: length+CRC32-framed
// records in rotated segment files, with a configurable fsync policy and
// torn-tail recovery. The screening service journals job lifecycle events
// through it so a crashed or SIGKILLed vsserved rebuilds its job table on
// the next boot instead of losing every queued and running screen.
//
// The durability contracts:
//
//   - A record either replays whole or not at all: each record carries the
//     CRC32 of its payload, so a torn write (crash mid-append) or a
//     bit-flipped tail is detected, truncated with a warning, and never
//     replayed corrupt — recovery yields the longest valid prefix.
//   - Open never panics on damaged input; any file content, including
//     fuzz-generated garbage, recovers to a consistent journal (see
//     FuzzJournalReplay).
//   - Appends go to the newest segment; segments rotate at SegmentBytes so
//     compaction can atomically replace history (temp file + rename) with
//     a snapshot of the live records without rewriting unbounded data.
//
// Records are opaque bytes to this package; the service stores one JSON
// object per record (JSONL with framing).
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

const (
	// headerSize frames each record: 4-byte little-endian payload length
	// followed by the 4-byte IEEE CRC32 of the payload.
	headerSize = 8
	// MaxRecordBytes bounds one record; a corrupt length field beyond it is
	// treated as a damaged tail, not an allocation request.
	MaxRecordBytes = 16 << 20
	// defaultSegmentBytes rotates segments at 8 MiB.
	defaultSegmentBytes = 8 << 20
	// defaultSyncInterval is the SyncInterval policy's default cadence.
	defaultSyncInterval = 100 * time.Millisecond
)

// SyncPolicy says when appends reach the disk platter.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: no acknowledged record is ever
	// lost to a crash. The default, and the slowest.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per Options.SyncInterval; a crash
	// loses at most that window of acknowledged records.
	SyncInterval
	// SyncNever leaves flushing to the OS; a crash can lose everything
	// since the last kernel writeback. For tests and throwaway runs.
	SyncNever
)

// String names the policy the way ParseSyncPolicy spells it.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy maps the -fsync flag spelling to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always", "":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
}

// Options configures a journal.
type Options struct {
	// SegmentBytes rotates the active segment when it would exceed this
	// size; 0 means 8 MiB.
	SegmentBytes int64
	// Policy is the fsync policy; the zero value is SyncAlways.
	Policy SyncPolicy
	// SyncInterval is the SyncInterval policy's cadence; 0 means 100ms.
	SyncInterval time.Duration
	// Logf receives recovery warnings (torn tails, dropped segments); nil
	// discards them.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = defaultSyncInterval
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// RecoveryInfo reports what Open found and repaired.
type RecoveryInfo struct {
	// Segments is the number of journal segments after recovery.
	Segments int
	// Records is the number of valid records available for replay.
	Records int
	// TruncatedBytes counts bytes dropped from a torn or corrupt tail.
	TruncatedBytes int64
	// DroppedSegments counts whole segments discarded because they
	// followed a corrupt record (replay keeps a consistent prefix).
	DroppedSegments int
}

// Journal is an open write-ahead journal. Append, Sync, Compact and Close
// are safe for concurrent use.
type Journal struct {
	mu   sync.Mutex
	dir  string
	opts Options

	f        *os.File // active segment, opened for append
	seg      int      // active segment index
	segSize  int64    // active segment size
	total    int64    // all segments' bytes
	lastSync time.Time
	closed   bool
}

// segmentName formats a segment file name; indices are dense but need not
// start at 1 (compaction advances them).
func segmentName(idx int) string { return fmt.Sprintf("seg-%08d.wal", idx) }

// listSegments returns the sorted segment indices present in dir.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var idx []int
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "seg-%08d.wal", &n); err == nil &&
			e.Name() == segmentName(n) {
			idx = append(idx, n)
		}
	}
	sort.Ints(idx)
	return idx, nil
}

// Open opens (or creates) the journal in dir, recovering from any torn or
// corrupt tail: the damaged suffix is truncated with a warning and later
// segments are dropped, so the surviving records form the longest valid
// prefix of what was written. It never panics on damaged input.
func Open(dir string, opts Options) (*Journal, RecoveryInfo, error) {
	opts = opts.withDefaults()
	var info RecoveryInfo
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, info, fmt.Errorf("wal: %w", err)
	}
	// Leftover temp files are failed compactions; they were never live.
	if tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp")); err == nil {
		for _, t := range tmps {
			os.Remove(t)
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, info, fmt.Errorf("wal: %w", err)
	}
	if len(segs) == 0 {
		segs = []int{1}
		f, err := os.OpenFile(filepath.Join(dir, segmentName(1)),
			os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, info, fmt.Errorf("wal: %w", err)
		}
		f.Close()
	}

	// Scan segments in order; the first invalid record ends the valid
	// prefix — its segment is truncated there and later segments dropped.
	j := &Journal{dir: dir, opts: opts, lastSync: time.Now()}
	active := 0 // position in segs of the segment that ends the prefix
	for k, idx := range segs {
		path := filepath.Join(dir, segmentName(idx))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, info, fmt.Errorf("wal: %w", err)
		}
		recs, valid := ScanRecords(data)
		info.Records += len(recs)
		j.total += int64(valid)
		active = k
		if valid < len(data) {
			info.TruncatedBytes += int64(len(data) - valid)
			opts.Logf("wal: segment %s: dropping %d corrupt tail bytes (kept %d records)",
				segmentName(idx), len(data)-valid, len(recs))
			if err := os.Truncate(path, int64(valid)); err != nil {
				return nil, info, fmt.Errorf("wal: truncate %s: %w", segmentName(idx), err)
			}
			for _, later := range segs[k+1:] {
				info.DroppedSegments++
				opts.Logf("wal: dropping segment %s after corrupt record", segmentName(later))
				os.Remove(filepath.Join(dir, segmentName(later)))
			}
			break
		}
	}
	segs = segs[:active+1]
	info.Segments = len(segs)

	j.seg = segs[len(segs)-1]
	f, err := os.OpenFile(filepath.Join(dir, segmentName(j.seg)),
		os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, info, fmt.Errorf("wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, info, fmt.Errorf("wal: %w", err)
	}
	j.f = f
	j.segSize = st.Size()
	if info.TruncatedBytes > 0 || info.DroppedSegments > 0 {
		syncDir(dir)
	}
	return j, info, nil
}

// ScanRecords parses framed records out of raw segment bytes, returning
// the decoded payloads and the byte length of the valid prefix. It stops
// at the first truncated or corrupt record and never panics; re-encoding
// the returned records reproduces data[:validLen] exactly.
func ScanRecords(data []byte) (records [][]byte, validLen int) {
	off := 0
	for {
		if len(data)-off < headerSize {
			return records, off
		}
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > MaxRecordBytes || len(data)-off-headerSize < int(n) {
			return records, off
		}
		payload := data[off+headerSize : off+headerSize+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return records, off
		}
		rec := make([]byte, n)
		copy(rec, payload)
		records = append(records, rec)
		off += headerSize + int(n)
	}
}

// AppendFrame appends one framed record to buf and returns the extended
// buffer — the exact bytes Append writes for the payload.
func AppendFrame(buf, payload []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// Append journals one record, rotating the segment and syncing per the
// configured policy.
func (j *Journal) Append(payload []byte) error {
	if int64(len(payload)) > MaxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds limit %d", len(payload), int64(MaxRecordBytes))
	}
	frame := AppendFrame(nil, payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("wal: journal closed")
	}
	if j.segSize > 0 && j.segSize+int64(len(frame)) > j.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	j.segSize += int64(len(frame))
	j.total += int64(len(frame))
	return j.maybeSyncLocked()
}

// rotateLocked seals the active segment and starts the next one.
func (j *Journal) rotateLocked() error {
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("wal: rotate sync: %w", err)
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	j.seg++
	f, err := os.OpenFile(filepath.Join(j.dir, segmentName(j.seg)),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	j.f = f
	j.segSize = 0
	syncDir(j.dir)
	return nil
}

// maybeSyncLocked applies the fsync policy after an append.
func (j *Journal) maybeSyncLocked() error {
	switch j.opts.Policy {
	case SyncAlways:
		return j.syncLocked()
	case SyncInterval:
		if time.Since(j.lastSync) >= j.opts.SyncInterval {
			return j.syncLocked()
		}
	}
	return nil
}

func (j *Journal) syncLocked() error {
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	j.lastSync = time.Now()
	return nil
}

// Sync forces an fsync regardless of policy.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	return j.syncLocked()
}

// Size is the journal's on-disk byte size across all segments.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total
}

// Replay streams every record, oldest first, to fn; a non-nil fn error
// stops the replay and is returned. The records are the valid prefix Open
// recovered (concurrent Appends during a replay may or may not be seen).
func (j *Journal) Replay(fn func(rec []byte) error) error {
	j.mu.Lock()
	dir := j.dir
	j.mu.Unlock()
	segs, err := listSegments(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	for _, idx := range segs {
		data, err := os.ReadFile(filepath.Join(dir, segmentName(idx)))
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		recs, _ := ScanRecords(data)
		for _, rec := range recs {
			if err := fn(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// Compact atomically replaces the journal's history with the given live
// records: they are written to a temp file, fsynced, renamed into place as
// the next segment, and only then are the old segments deleted. A crash at
// any point leaves either the old history, or the old history plus the
// snapshot — callers' records must therefore be last-write-wins (the
// service journals full job snapshots), which makes both replays converge.
func (j *Journal) Compact(live [][]byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("wal: journal closed")
	}
	newIdx := j.seg + 1
	newPath := filepath.Join(j.dir, segmentName(newIdx))
	tmp := newPath + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	var buf []byte
	for _, rec := range live {
		buf = AppendFrame(buf, rec)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := os.Rename(tmp, newPath); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: compact: %w", err)
	}
	syncDir(j.dir)

	// The snapshot is durable; retire the history it replaces.
	oldSeg := j.seg
	j.f.Close()
	segs, err := listSegments(j.dir)
	if err == nil {
		for _, idx := range segs {
			if idx <= oldSeg {
				os.Remove(filepath.Join(j.dir, segmentName(idx)))
			}
		}
	}
	syncDir(j.dir)

	nf, err := os.OpenFile(newPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: compact reopen: %w", err)
	}
	j.f = nf
	j.seg = newIdx
	j.segSize = int64(len(buf))
	j.total = int64(len(buf))
	return nil
}

// Close syncs and closes the journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	serr := j.f.Sync()
	cerr := j.f.Close()
	if serr != nil {
		return fmt.Errorf("wal: close sync: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("wal: close: %w", cerr)
	}
	return nil
}

// syncDir fsyncs a directory so renames and unlinks are durable; errors
// are ignored (some filesystems reject directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
