package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"

	"github.com/metascreen/metascreen/internal/fsim"
)

func mustPlan(t *testing.T, spec string) fsim.Plan {
	t.Helper()
	p, err := fsim.ParsePlan(spec)
	if err != nil {
		t.Fatalf("ParsePlan(%q): %v", spec, err)
	}
	return p
}

// ioCounter collects OnIOError calls by op label.
type ioCounter struct {
	mu  sync.Mutex
	ops map[string]int
}

func (c *ioCounter) hook() func(op string, err error) {
	return func(op string, err error) {
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.ops == nil {
			c.ops = map[string]int{}
		}
		c.ops[op]++
	}
}

func (c *ioCounter) get(op string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops[op]
}

// TestFailStopAndRecoverENOSPC drives the journal into a full disk,
// verifies fail-stop stickiness, frees space, and proves Recover returns
// it to service with no acknowledged record lost and no phantom record.
func TestFailStopAndRecoverENOSPC(t *testing.T) {
	dir := t.TempDir()
	faulty := fsim.New(mustPlan(t, "*:enospc@256"), fsim.Config{Seed: 1})
	j, _, err := Open(dir, Options{Policy: SyncAlways, FS: faulty})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	var acked []string
	i := 0
	for ; ; i++ {
		rec := fmt.Sprintf("record-%03d-with-some-padding-bytes", i)
		if err := j.Append([]byte(rec)); err != nil {
			if !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("append %d err = %v, want ENOSPC", i, err)
			}
			break
		}
		acked = append(acked, rec)
	}
	if len(acked) == 0 {
		t.Fatal("disk filled before any append succeeded; budget too small")
	}
	if j.Failed() == nil {
		t.Fatal("journal not fail-stopped after ENOSPC")
	}
	// Sticky: the next append fails immediately without touching the disk.
	if err := j.Append([]byte("x")); err == nil {
		t.Fatal("append on fail-stopped journal succeeded")
	}
	if err := j.Sync(); err == nil {
		t.Fatal("sync on fail-stopped journal succeeded")
	}
	// Recover's probe fsync writes nothing, so it can succeed on a full
	// disk — but the next append immediately re-enters fail-stop.
	if err := j.Recover(); err != nil {
		t.Fatalf("Recover on full disk: %v", err)
	}
	if err := j.Append([]byte("still-full")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append on still-full disk err = %v, want ENOSPC", err)
	}
	if j.Failed() == nil {
		t.Fatal("journal not re-fail-stopped on still-full disk")
	}

	faulty.FreeSpace()
	if err := j.Recover(); err != nil {
		t.Fatalf("Recover after FreeSpace: %v", err)
	}
	if j.Failed() != nil {
		t.Fatalf("Failed() = %v after successful Recover", j.Failed())
	}
	post := "post-recover-record"
	if err := j.Append([]byte(post)); err != nil {
		t.Fatalf("append after Recover: %v", err)
	}
	acked = append(acked, post)

	// Reopen from disk: exactly the acknowledged records replay.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if info.TruncatedBytes != 0 {
		t.Errorf("reopen found %d torn bytes; Recover should have truncated them", info.TruncatedBytes)
	}
	var got []string
	if err := j2.Replay(func(rec []byte) error {
		got = append(got, string(rec))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(acked) {
		t.Fatalf("replayed %d records, acknowledged %d", len(got), len(acked))
	}
	for i := range got {
		if got[i] != acked[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], acked[i])
		}
	}
}

// TestFsyncFailureFailStops checks fsyncgate semantics: a failed fsync
// fail-stops the segment rather than silently retrying the poisoned fd.
func TestFsyncFailureFailStops(t *testing.T) {
	dir := t.TempDir()
	faulty := fsim.New(mustPlan(t, "*.wal:fsync-fail@1"), fsim.Config{Seed: 1})
	var c ioCounter
	j, _, err := Open(dir, Options{Policy: SyncAlways, FS: faulty, OnIOError: c.hook()})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	err = j.Append([]byte("rec"))
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("append err = %v, want EIO from fsync", err)
	}
	if j.Failed() == nil {
		t.Fatal("journal not fail-stopped after fsync failure")
	}
	if c.get("sync") == 0 {
		t.Fatal("OnIOError not called for sync failure")
	}
	// The unacknowledged frame is excluded from the acknowledged size.
	if j.Size() != 0 {
		t.Fatalf("Size() = %d after unacknowledged append, want 0", j.Size())
	}
}

// TestQuarantinePreservesCorruptBytes verifies satellite behavior: a
// corrupt mid-WAL segment's tail and every later segment end up under
// quarantine/ instead of being deleted.
func TestQuarantinePreservesCorruptBytes(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{SegmentBytes: 48, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := j.Append([]byte(fmt.Sprintf("record-number-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := listSegments(fsim.OSFS(), dir)
	if len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %v", segs)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, segmentName(segs[1]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, info, err := Open(dir, Options{SegmentBytes: 48})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if info.QuarantinedSegments != len(segs)-2 {
		t.Fatalf("quarantined %d segments, want %d", info.QuarantinedSegments, len(segs)-2)
	}

	// The corrupt tail bytes are preserved verbatim.
	tail, err := os.ReadFile(filepath.Join(dir, quarantineDir, segmentName(segs[1])+".tail"))
	if err != nil {
		t.Fatalf("quarantined tail missing: %v", err)
	}
	if len(tail) != int(info.TruncatedBytes) {
		t.Errorf("quarantined tail is %d bytes, truncation reported %d", len(tail), info.TruncatedBytes)
	}
	// Every later segment was moved, not deleted.
	for _, idx := range segs[2:] {
		if _, err := os.Stat(filepath.Join(dir, quarantineDir, segmentName(idx))); err != nil {
			t.Errorf("segment %s not in quarantine: %v", segmentName(idx), err)
		}
		if _, err := os.Stat(filepath.Join(dir, segmentName(idx))); !os.IsNotExist(err) {
			t.Errorf("segment %s still present in journal dir", segmentName(idx))
		}
	}
}

// removeFailFS fails every Remove; syncDirFailFS fails every SyncDir.
// These target specific ops without disturbing Open's segment reads the
// way a glob-matched eio rule would.
type removeFailFS struct{ fsim.FS }

func (removeFailFS) Remove(string) error { return syscall.EIO }

type syncDirFailFS struct{ fsim.FS }

func (syncDirFailFS) SyncDir(string) error { return syscall.EIO }

// TestCompactRemoveErrorCounted: Compact's old-segment removal failures
// are absorbed but must be logged and counted, never swallowed silently.
func TestCompactRemoveErrorCounted(t *testing.T) {
	dir := t.TempDir()
	var c ioCounter
	j, _, err := Open(dir, Options{SegmentBytes: 64, Policy: SyncNever,
		FS: removeFailFS{fsim.OSFS()}, OnIOError: c.hook()})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 10; i++ {
		if err := j.Append([]byte(fmt.Sprintf("history-%02d-padding", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Compact([][]byte{[]byte("snap")}); err != nil {
		t.Fatalf("Compact must absorb remove failures, got %v", err)
	}
	if c.get("remove") == 0 {
		t.Fatal("old-segment remove failure not counted via OnIOError")
	}
	// The journal stays usable; the orphan old segments replay before the
	// snapshot and converge on it.
	if err := j.Append([]byte("post")); err != nil {
		t.Fatalf("append after leaky compact: %v", err)
	}
}

// TestDirSyncErrorCounted: directory fsync failures on the compact path
// must surface through OnIOError rather than vanish.
func TestDirSyncErrorCounted(t *testing.T) {
	dir := t.TempDir()
	var c ioCounter
	// Default SegmentBytes: no rotation, so the only dir syncs are
	// compaction's.
	j, _, err := Open(dir, Options{Policy: SyncNever,
		FS: syncDirFailFS{fsim.OSFS()}, OnIOError: c.hook()})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 10; i++ {
		if err := j.Append([]byte(fmt.Sprintf("history-%02d-padding", i))); err != nil {
			t.Fatal(err)
		}
	}
	// The pre-retirement dir sync failure is fatal to the compaction (the
	// snapshot's durability is unproven) and must be counted.
	if err := j.Compact([][]byte{[]byte("snap")}); err == nil {
		t.Fatal("Compact succeeded although the snapshot's dir entry never synced")
	}
	if c.get("dirsync") == 0 {
		t.Fatal("dirsync failure not counted via OnIOError")
	}
}

// TestTornWriteRecovery: a torn append (injected partial write) must not
// corrupt recovery — reopen truncates the torn frame and keeps the
// acknowledged prefix.
func TestTornWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	faulty := fsim.New(mustPlan(t, "*.wal:torn-write@1"), fsim.Config{Seed: 11})
	j, _, err := Open(dir, Options{Policy: SyncNever, FS: faulty})
	if err != nil {
		t.Fatal(err)
	}
	err = j.Append([]byte("a-record-long-enough-to-tear-somewhere"))
	if err == nil {
		t.Fatal("torn write did not error")
	}
	if j.Failed() == nil {
		t.Fatal("journal not fail-stopped after torn write")
	}
	j.Close()

	j2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if info.Records != 0 {
		t.Fatalf("recovered %d records from an unacknowledged torn append, want 0", info.Records)
	}
	if err := j2.Append([]byte("fresh")); err != nil {
		t.Fatalf("append after torn-write recovery: %v", err)
	}
}
