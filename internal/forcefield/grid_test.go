package forcefield

import (
	"math"
	"testing"

	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/rng"
	"github.com/metascreen/metascreen/internal/vec"
)

func gridFixtures(t *testing.T, opts Options, spacing float64) (*Grid, *Direct, *Topology) {
	t.Helper()
	rec := NewTopology(molecule.SyntheticProtein("rec", 500, 61))
	lig := NewTopology(molecule.SyntheticLigand("lig", 15, 62))
	g, err := NewGrid(rec, lig, opts, spacing)
	if err != nil {
		t.Fatal(err)
	}
	return g, NewDirect(rec, lig, opts), lig
}

// latticePose snaps a random pose onto exact lattice points of g.
func latticePose(g *Grid, r *rng.Source, n int) []vec.V3 {
	pose := make([]vec.V3, n)
	for i := range pose {
		ix := 2 + r.Intn(g.nx-4)
		iy := 2 + r.Intn(g.ny-4)
		iz := 2 + r.Intn(g.nz-4)
		pose[i] = vec.V3{
			X: g.origin.X + float64(ix)*g.spacing,
			Y: g.origin.Y + float64(iy)*g.spacing,
			Z: g.origin.Z + float64(iz)*g.spacing,
		}
	}
	return pose
}

func TestGridExactAtLatticePoints(t *testing.T) {
	// At lattice points interpolation is exact, so the grid must match
	// the direct scorer up to float32 tabulation rounding.
	g, direct, lig := gridFixtures(t, Options{}, 1.0)
	r := rng.New(63)
	for trial := 0; trial < 20; trial++ {
		pose := latticePose(g, r, lig.Len())
		want := direct.Score(pose)
		got := g.Score(pose)
		tol := 1e-4 * (1 + math.Abs(want))
		if math.Abs(got-want) > tol {
			t.Errorf("trial %d: grid %v vs direct %v at lattice points", trial, got, want)
		}
	}
}

func TestGridPreservesPoseRanking(t *testing.T) {
	// What docking needs from a grid is that it ranks poses like the
	// exact scorer. Compare orderings over moderate-energy poses.
	g, direct, lig := gridFixtures(t, Options{}, 0.5)
	r := rng.New(63)
	type pair struct{ exact, approx float64 }
	var pts []pair
	for trial := 0; trial < 400 && len(pts) < 30; trial++ {
		pose := randomPose(r, lig.Len(), r.InSphere(40), 3)
		want := direct.Score(pose)
		if math.Abs(want) < 0.5 || want > 30 {
			continue // skip empty space and deep clashes
		}
		pts = append(pts, pair{exact: want, approx: g.Score(pose)})
	}
	if len(pts) < 15 {
		t.Fatalf("only %d poses in the checkable energy band", len(pts))
	}
	// Kendall-style concordance: the fraction of pose pairs ordered the
	// same way by both scorers.
	concordant, total := 0, 0
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if math.Abs(pts[i].exact-pts[j].exact) < 0.5 {
				continue // too close to call
			}
			total++
			if (pts[i].exact < pts[j].exact) == (pts[i].approx < pts[j].approx) {
				concordant++
			}
		}
	}
	if total == 0 {
		t.Fatal("no comparable pairs")
	}
	frac := float64(concordant) / float64(total)
	if frac < 0.85 {
		t.Errorf("grid preserves only %.0f%% of pose orderings", 100*frac)
	}
}

func TestGridFinerSpacingIsMoreAccurate(t *testing.T) {
	coarse, direct, lig := gridFixtures(t, Options{}, 1.5)
	fine, _, _ := gridFixtures(t, Options{}, 0.4)
	r := rng.New(64)
	var errCoarse, errFine float64
	n := 0
	for trial := 0; trial < 300 && n < 30; trial++ {
		pose := randomPose(r, lig.Len(), r.InSphere(35), 3)
		want := direct.Score(pose)
		if math.Abs(want) < 1 || math.Abs(want) > 50 {
			continue
		}
		n++
		errCoarse += math.Abs(coarse.Score(pose) - want)
		errFine += math.Abs(fine.Score(pose) - want)
	}
	if n < 10 {
		t.Fatal("not enough checkable poses")
	}
	if errFine >= errCoarse {
		t.Errorf("fine grid error %v not below coarse %v", errFine, errCoarse)
	}
}

func TestGridFarPoseIsZero(t *testing.T) {
	g, _, lig := gridFixtures(t, Options{}, 0.75)
	far := make([]vec.V3, lig.Len())
	for i := range far {
		far[i] = vec.New(1000, 1000, 1000)
	}
	if got := g.Score(far); got != 0 {
		t.Errorf("far pose scored %v", got)
	}
}

func TestGridCoulomb(t *testing.T) {
	gQ, directQ, lig := gridFixtures(t, Options{Coulomb: true}, 1.0)
	g0, _, _ := gridFixtures(t, Options{}, 1.0)
	r := rng.New(65)
	// The Coulomb grid must differ from the plain LJ grid and match the
	// direct Coulomb scorer exactly at lattice points.
	for trial := 0; trial < 20; trial++ {
		pose := latticePose(gQ, r, lig.Len())
		want := directQ.Score(pose)
		got := gQ.Score(pose)
		if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
			t.Errorf("trial %d: coulomb grid %v vs direct %v", trial, got, want)
		}
		if want != 0 && gQ.Score(pose) == g0.Score(pose) {
			t.Error("coulomb grid identical to LJ grid on a charged pose")
		}
	}
}

func TestGridEmptyReceptor(t *testing.T) {
	lig := NewTopology(molecule.SyntheticLigand("lig", 5, 1))
	if _, err := NewGrid(&Topology{}, lig, Options{}, 0); err == nil {
		t.Error("empty receptor accepted")
	}
}

func TestGridMemoryBytes(t *testing.T) {
	g, _, _ := gridFixtures(t, Options{Coulomb: true}, 1.0)
	if g.MemoryBytes() <= 0 {
		t.Error("no memory reported")
	}
	// Finer grid -> more memory.
	fine, _, _ := gridFixtures(t, Options{Coulomb: true}, 0.5)
	if fine.MemoryBytes() <= g.MemoryBytes() {
		t.Error("finer grid not larger")
	}
}

func TestGridName(t *testing.T) {
	g, _, _ := gridFixtures(t, Options{}, 1.5)
	if g.Name() != "grid" {
		t.Errorf("Name = %q", g.Name())
	}
}
