package forcefield

import (
	"math"
	"testing"

	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/rng"
	"github.com/metascreen/metascreen/internal/vec"
)

// pairMolecule builds a one-atom molecule of element e at p with charge q.
func pairMolecule(e molecule.Element, p vec.V3, q float64) *Topology {
	return NewTopology(molecule.New("one", []molecule.Atom{
		{Element: e, Pos: p, Charge: q},
	}))
}

// ljPair computes the analytic LJ energy for two atoms of elements a, b at
// distance r.
func ljPair(a, b molecule.Element, r float64) float64 {
	t := NewPairTable()
	p := t.At(uint8(a), uint8(b))
	inv6 := 1 / (r * r * r * r * r * r)
	return inv6 * (p.A*inv6 - p.B)
}

func TestDirectMatchesAnalyticPair(t *testing.T) {
	rec := pairMolecule(molecule.Carbon, vec.Zero, 0)
	lig := pairMolecule(molecule.Oxygen, vec.Zero, 0)
	s := NewDirect(rec, lig, Options{})
	for _, r := range []float64{2.5, 3.0, 3.5, 4.0, 6.0, 10.0} {
		got := s.Score([]vec.V3{vec.New(r, 0, 0)})
		want := ljPair(molecule.Carbon, molecule.Oxygen, r)
		if math.Abs(got-want) > 1e-12*math.Abs(want)+1e-15 {
			t.Errorf("r=%v: got %v, want %v", r, got, want)
		}
	}
}

func TestLJMinimumAtTwoSixthSigma(t *testing.T) {
	// The LJ minimum for a pair is at r* = 2^(1/6) * sigma_mixed.
	sigma := (3.40 + 3.40) / 2
	rstar := math.Pow(2, 1.0/6) * sigma
	at := func(r float64) float64 { return ljPair(molecule.Carbon, molecule.Carbon, r) }
	if !(at(rstar) < at(rstar*0.97) && at(rstar) < at(rstar*1.03)) {
		t.Errorf("no minimum at r* = %v: %v %v %v", rstar, at(rstar*0.97), at(rstar), at(rstar*1.03))
	}
	// Well depth equals epsilon.
	if math.Abs(at(rstar)+0.0860) > 1e-9 {
		t.Errorf("well depth = %v, want -0.0860", at(rstar))
	}
}

func TestCutoff(t *testing.T) {
	rec := pairMolecule(molecule.Carbon, vec.Zero, 0)
	lig := pairMolecule(molecule.Carbon, vec.Zero, 0)
	s := NewDirect(rec, lig, Options{})
	if got := s.Score([]vec.V3{vec.New(Cutoff+0.01, 0, 0)}); got != 0 {
		t.Errorf("beyond cutoff: %v, want 0", got)
	}
	if got := s.Score([]vec.V3{vec.New(Cutoff-0.01, 0, 0)}); got == 0 {
		t.Error("just inside cutoff contributed nothing")
	}
}

func TestClashClampFinite(t *testing.T) {
	rec := pairMolecule(molecule.Carbon, vec.Zero, 0)
	lig := pairMolecule(molecule.Carbon, vec.Zero, 0)
	s := NewDirect(rec, lig, Options{})
	got := s.Score([]vec.V3{vec.Zero})
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("overlapping atoms scored %v", got)
	}
	if got <= 0 {
		t.Errorf("clash energy = %v, want strongly positive", got)
	}
	// Clamped region is flat: any r below the clamp gives the same energy.
	alt := s.Score([]vec.V3{vec.New(0.3, 0, 0)})
	if got != alt {
		t.Errorf("clamp not flat: %v vs %v", got, alt)
	}
}

func TestCoulombTermSigns(t *testing.T) {
	rec := pairMolecule(molecule.Carbon, vec.Zero, 1)
	lig := pairMolecule(molecule.Carbon, vec.Zero, -1)
	withQ := NewDirect(rec, lig, Options{Coulomb: true})
	noQ := NewDirect(rec, lig, Options{})
	pose := []vec.V3{vec.New(8, 0, 0)}
	diff := withQ.Score(pose) - noQ.Score(pose)
	if diff >= 0 {
		t.Errorf("opposite charges raised the energy by %v", diff)
	}
	want := -coulombK / (8 * 8 * 4)
	if math.Abs(diff-want) > 1e-9 {
		t.Errorf("coulomb term = %v, want %v", diff, want)
	}
}

func TestScorePanicsOnWrongPoseLength(t *testing.T) {
	rec := pairMolecule(molecule.Carbon, vec.Zero, 0)
	lig := pairMolecule(molecule.Carbon, vec.Zero, 0)
	s := NewDirect(rec, lig, Options{})
	defer func() {
		if recover() == nil {
			t.Error("no panic for wrong pose length")
		}
	}()
	s.Score([]vec.V3{vec.Zero, vec.Zero})
}

func randomPose(r *rng.Source, n int, around vec.V3, spread float64) []vec.V3 {
	pose := make([]vec.V3, n)
	for i := range pose {
		pose[i] = around.Add(r.InSphere(spread))
	}
	return pose
}

func testScorerAgreement(t *testing.T, opts Options) {
	t.Helper()
	rec := NewTopology(molecule.SyntheticProtein("rec", 700, 5))
	lig := NewTopology(molecule.SyntheticLigand("lig", 20, 6))
	direct := NewDirect(rec, lig, opts)
	tiled := NewTiled(rec, lig, opts)
	cells := NewCellList(rec, lig, opts)

	r := rng.New(77)
	recCenter := vec.Centroid(rec.Pos)
	for trial := 0; trial < 40; trial++ {
		// Poses at the surface, inside, and far outside the receptor.
		center := recCenter.Add(r.InSphere(40))
		pose := randomPose(r, lig.Len(), center, 4)
		d := direct.Score(pose)
		ti := tiled.Score(pose)
		ce := cells.Score(pose)
		tol := 1e-9 * (1 + math.Abs(d))
		if math.Abs(d-ti) > tol {
			t.Errorf("trial %d: tiled %v != direct %v", trial, ti, d)
		}
		if math.Abs(d-ce) > tol {
			t.Errorf("trial %d: celllist %v != direct %v", trial, ce, d)
		}
	}
}

func TestScorersAgreeLJ(t *testing.T) { testScorerAgreement(t, Options{}) }

func TestScorersAgreeCoulomb(t *testing.T) { testScorerAgreement(t, Options{Coulomb: true}) }

func TestScoreTranslationInvariance(t *testing.T) {
	recMol := molecule.SyntheticProtein("rec", 300, 8)
	lig := NewTopology(molecule.SyntheticLigand("lig", 12, 9))
	shift := vec.New(13.5, -7, 2)
	s1 := NewDirect(NewTopology(recMol), lig, Options{})
	s2 := NewDirect(NewTopology(recMol.Translated(shift)), lig, Options{})

	r := rng.New(10)
	pose := randomPose(r, lig.Len(), recMol.Centroid(), 15)
	shifted := make([]vec.V3, len(pose))
	for i := range pose {
		shifted[i] = pose[i].Add(shift)
	}
	a, b := s1.Score(pose), s2.Score(shifted)
	if math.Abs(a-b) > 1e-6*(1+math.Abs(a)) {
		t.Errorf("translation changed energy: %v vs %v", a, b)
	}
}

func TestCellListFarPoseIsZero(t *testing.T) {
	rec := NewTopology(molecule.SyntheticProtein("rec", 300, 11))
	lig := NewTopology(molecule.SyntheticLigand("lig", 10, 12))
	cells := NewCellList(rec, lig, Options{})
	far := vec.BoundPoints(rec.Pos).Hi.Add(vec.New(100, 100, 100))
	pose := randomPose(rng.New(13), lig.Len(), far, 2)
	if got := cells.Score(pose); got != 0 {
		t.Errorf("pose 100 A away scored %v", got)
	}
}

func TestPairOps(t *testing.T) {
	rec := NewTopology(molecule.SyntheticProtein("rec", 100, 14))
	lig := NewTopology(molecule.SyntheticLigand("lig", 10, 15))
	ti := NewTiled(rec, lig, Options{})
	if got := ti.PairOps(); got != 1000 {
		t.Errorf("PairOps = %d, want 1000", got)
	}
}

func TestScorerNames(t *testing.T) {
	rec := pairMolecule(molecule.Carbon, vec.Zero, 0)
	lig := pairMolecule(molecule.Carbon, vec.Zero, 0)
	for _, s := range []Scorer{
		NewDirect(rec, lig, Options{}),
		NewTiled(rec, lig, Options{}),
		NewCellList(rec, lig, Options{}),
	} {
		if s.Name() == "" {
			t.Error("scorer with empty name")
		}
	}
}

func TestGoldenEnergies(t *testing.T) {
	// Regression net: exact energies of fixed configurations. A change to
	// parameters, mixing rules or kernel math shows up here first. Values
	// were computed by this implementation and cross-checked against the
	// analytic pair formula.
	rec := NewTopology(molecule.New("golden-rec", []molecule.Atom{
		{Element: molecule.Carbon, Pos: vec.New(0, 0, 0), Charge: 0.1},
		{Element: molecule.Oxygen, Pos: vec.New(3, 0, 0), Charge: -0.4},
		{Element: molecule.Nitrogen, Pos: vec.New(0, 3, 0), Charge: -0.3},
	}))
	lig := NewTopology(molecule.New("golden-lig", []molecule.Atom{
		{Element: molecule.Carbon, Pos: vec.New(0, 0, 0), Charge: 0.2},
		{Element: molecule.Sulfur, Pos: vec.New(1.8, 0, 0), Charge: -0.1},
	}))
	pose := []vec.V3{vec.New(1.5, 1.5, 3.0), vec.New(3.3, 1.5, 3.0)}

	// Golden value from the analytic per-pair sum.
	table := NewPairTable()
	want := 0.0
	wantQ := 0.0
	for i, rp := range rec.Pos {
		for j, lp := range pose {
			r2 := rp.Dist2(lp)
			p := table.At(rec.Type[i], lig.Type[j])
			inv6 := 1 / (r2 * r2 * r2)
			want += inv6 * (p.A*inv6 - p.B)
			wantQ += coulombK * rec.Charge[i] * lig.Charge[j] / (4 * r2)
		}
	}
	for _, s := range []Scorer{
		NewDirect(rec, lig, Options{}),
		NewTiled(rec, lig, Options{}),
		NewCellList(rec, lig, Options{}),
	} {
		if got := s.Score(pose); math.Abs(got-want) > 1e-12*math.Abs(want) {
			t.Errorf("%s: %v, want %v", s.Name(), got, want)
		}
	}
	withQ := NewDirect(rec, lig, Options{Coulomb: true})
	if got := withQ.Score(pose); math.Abs(got-(want+wantQ)) > 1e-12*math.Abs(want+wantQ) {
		t.Errorf("coulomb: %v, want %v", got, want+wantQ)
	}
	// Freeze the absolute number too: any change to LJ parameters or
	// mixing rules must be deliberate.
	const frozen = -0.6462180350618174
	if math.Abs(want-frozen) > 1e-12 {
		t.Errorf("golden energy drifted: %v, frozen %v", want, frozen)
	}
}

func TestPairTableSymmetric(t *testing.T) {
	tab := NewPairTable()
	for i := 0; i < numTypes; i++ {
		for j := 0; j < numTypes; j++ {
			a, b := tab.At(uint8(i), uint8(j)), tab.At(uint8(j), uint8(i))
			if a != b {
				t.Errorf("pair table asymmetric at (%d,%d)", i, j)
			}
			if a.A <= 0 || a.B <= 0 {
				t.Errorf("non-positive coefficients at (%d,%d): %+v", i, j, a)
			}
		}
	}
}
