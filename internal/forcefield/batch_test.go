package forcefield

import (
	"math"
	"testing"

	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/rng"
	"github.com/metascreen/metascreen/internal/vec"
)

// batchScorers builds every BatchScorer implementation over one synthetic
// receptor/ligand pair. The neighbor list's region is wide enough to cover
// every pose the tests generate, so its Score is exact for all of them.
func batchScorers(t *testing.T, opts Options) (rec, lig *Topology, scorers []BatchScorer) {
	t.Helper()
	rec = NewTopology(molecule.SyntheticProtein("rec", 700, 5))
	lig = NewTopology(molecule.SyntheticLigand("lig", 20, 6))
	grid, err := NewGrid(rec, lig, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	cells := NewCellList(rec, lig, opts)
	center := vec.Centroid(rec.Pos)
	half := vec.New(60, 60, 60)
	nl := NewNeighborList(cells, rec, vec.NewAABB(center.Sub(half), center.Add(half)))
	scorers = []BatchScorer{
		NewDirect(rec, lig, opts),
		NewTiled(rec, lig, opts),
		cells,
		grid,
		nl,
	}
	return rec, lig, scorers
}

// TestScoreBatchBitIdenticalToScore is the core differential property of the
// batched hot path: for every implementation, ScoreBatch must assign exactly
// the float64 bits looped Score would, for any batch size including the
// empty batch.
func TestScoreBatchBitIdenticalToScore(t *testing.T) {
	for _, opts := range []Options{{}, {Coulomb: true}} {
		rec, lig, scorers := batchScorers(t, opts)
		r := rng.New(99)
		center := vec.Centroid(rec.Pos)
		pool := make([][]vec.V3, 16)
		for i := range pool {
			// Surface, buried, and clashing poses alike.
			pool[i] = randomPose(r, lig.Len(), center.Add(r.InSphere(30)), 4)
		}
		for _, s := range scorers {
			for _, n := range []int{0, 1, 2, 3, 7, len(pool)} {
				batch := pool[:n]
				out := make([]float64, n)
				for i := range out {
					out[i] = math.NaN() // catch unwritten outputs
				}
				s.ScoreBatch(batch, out)
				for i := range batch {
					if want := s.Score(batch[i]); out[i] != want {
						t.Errorf("%s coulomb=%v n=%d pose %d: batch %v != loop %v",
							s.Name(), opts.Coulomb, n, i, out[i], want)
					}
				}
			}
		}
	}
}

// TestScoreBatchSingleAtomDegenerate exercises the smallest possible
// topologies: one receptor atom, one ligand atom, poses straddling the
// clamp, the well, and the cutoff.
func TestScoreBatchSingleAtomDegenerate(t *testing.T) {
	rec := pairMolecule(molecule.Carbon, vec.Zero, 0.2)
	lig := pairMolecule(molecule.Oxygen, vec.Zero, -0.1)
	opts := Options{Coulomb: true}
	grid, err := NewGrid(rec, lig, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	cells := NewCellList(rec, lig, opts)
	half := vec.New(20, 20, 20)
	nl := NewNeighborList(cells, rec, vec.NewAABB(half.Scale(-1), half))
	poses := [][]vec.V3{
		{vec.Zero},                     // clamped clash
		{vec.New(3.5, 0, 0)},           // near the LJ well
		{vec.New(Cutoff - 0.01, 0, 0)}, // just inside the cutoff
		{vec.New(Cutoff + 5, 0, 0)},    // beyond the cutoff
	}
	out := make([]float64, len(poses))
	for _, s := range []BatchScorer{
		NewDirect(rec, lig, opts), NewTiled(rec, lig, opts), cells, grid, nl,
	} {
		s.ScoreBatch(poses, out)
		for i, pose := range poses {
			if want := s.Score(pose); out[i] != want {
				t.Errorf("%s pose %d: batch %v != loop %v", s.Name(), i, out[i], want)
			}
		}
	}
}

// TestScoreBatchPanicsOnLengthMismatch pins the contract that a
// poses/outputs length mismatch is a programming error, not a silent
// truncation.
func TestScoreBatchPanicsOnLengthMismatch(t *testing.T) {
	rec := pairMolecule(molecule.Carbon, vec.Zero, 0)
	lig := pairMolecule(molecule.Carbon, vec.Zero, 0)
	cells := NewCellList(rec, lig, Options{})
	half := vec.New(15, 15, 15)
	scorers := []BatchScorer{
		NewDirect(rec, lig, Options{}),
		NewTiled(rec, lig, Options{}),
		cells,
		NewNeighborList(cells, rec, vec.NewAABB(half.Scale(-1), half)),
	}
	if grid, err := NewGrid(rec, lig, Options{}, 0); err == nil {
		scorers = append(scorers, grid)
	} else {
		t.Fatal(err)
	}
	poses := [][]vec.V3{{vec.New(4, 0, 0)}, {vec.New(5, 0, 0)}}
	for _, s := range scorers {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic for mismatched batch lengths", s.Name())
				}
			}()
			s.ScoreBatch(poses, make([]float64, 1))
		}()
	}
}

// TestLattice32RankConcordant checks the float32 lattice-sampling path: its
// scores track the float64 path within a small relative tolerance, and any
// pair of poses clearly separated in float64 orders identically in float32 —
// the rank-concordance guarantee the Lattice32 option documents.
func TestLattice32RankConcordant(t *testing.T) {
	rec := NewTopology(molecule.SyntheticProtein("rec", 400, 21))
	lig := NewTopology(molecule.SyntheticLigand("lig", 15, 22))
	g64, err := NewGrid(rec, lig, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	g32, err := NewGrid(rec, lig, Options{Lattice32: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	center := vec.Centroid(rec.Pos)
	type scored struct{ s64, s32 float64 }
	var pts []scored
	for trial := 0; trial < 60; trial++ {
		pose := randomPose(r, lig.Len(), center.Add(r.InSphere(25)), 3)
		pts = append(pts, scored{g64.Score(pose), g32.Score(pose)})
	}
	for _, p := range pts {
		if math.Abs(p.s64-p.s32) > 1e-3*(1+math.Abs(p.s64)) {
			t.Errorf("float32 path diverged: %v vs %v", p.s32, p.s64)
		}
	}
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			d := pts[i].s64 - pts[j].s64
			tol := 1e-3 * (1 + math.Abs(pts[i].s64) + math.Abs(pts[j].s64))
			if math.Abs(d) <= tol {
				continue // too close in float64 to demand an order
			}
			if (d < 0) != (pts[i].s32-pts[j].s32 < 0) {
				t.Errorf("rank flip: f64 %v vs %v, f32 %v vs %v",
					pts[i].s64, pts[j].s64, pts[i].s32, pts[j].s32)
			}
		}
	}
}

// TestScoreBatchAllocFree pins the BatchScorer contract that implementations
// allocate nothing per call: steady-state batched scoring with reused
// buffers must be alloc-free.
func TestScoreBatchAllocFree(t *testing.T) {
	rec := NewTopology(molecule.SyntheticProtein("rec", 300, 7))
	lig := NewTopology(molecule.SyntheticLigand("lig", 10, 8))
	cells := NewCellList(rec, lig, Options{})
	center := vec.Centroid(rec.Pos)
	half := vec.New(40, 40, 40)
	nl := NewNeighborList(cells, rec, vec.NewAABB(center.Sub(half), center.Add(half)))
	grid, err := NewGrid(rec, lig, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	poses := make([][]vec.V3, 8)
	for i := range poses {
		poses[i] = randomPose(r, lig.Len(), center.Add(r.InSphere(10)), 3)
	}
	out := make([]float64, len(poses))
	for _, s := range []BatchScorer{
		NewDirect(rec, lig, Options{}), NewTiled(rec, lig, Options{}), cells, grid, nl,
	} {
		if allocs := testing.AllocsPerRun(10, func() { s.ScoreBatch(poses, out) }); allocs != 0 {
			t.Errorf("%s: ScoreBatch allocates %.1f per call, want 0", s.Name(), allocs)
		}
	}
}
