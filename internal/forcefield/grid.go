package forcefield

import (
	"fmt"

	"github.com/metascreen/metascreen/internal/vec"
)

// Grid is a precomputed-potential scorer in the BINDSURF style: the
// receptor's Lennard-Jones field is tabulated once per ligand atom type on
// a uniform lattice, and scoring a pose reduces to trilinear interpolation
// per ligand atom — O(L) instead of O(R*L). This trades memory and a small
// interpolation error for a large constant-factor win, the classic
// docking-grid approach (Autodock, BINDSURF).
//
// Grids are built over the receptor's padded bounding box; ligand atoms
// outside the box contribute zero (they are beyond the cutoff of every
// receptor atom by construction of the padding).
type Grid struct {
	lig        *Topology
	opts       Options
	origin     vec.V3
	spacing    float64
	nx, ny, nz int

	// values[t] is the tabulated potential for ligand type t, laid out
	// x-major: values[t][(ix*ny+iy)*nz+iz].
	values [][]float32
	// charge is the tabulated electrostatic potential (per unit charge),
	// present only when opts.Coulomb is set.
	charge []float32
}

// GridSpacing is the default lattice spacing in angstroms.
const GridSpacing = 0.75

// NewGrid tabulates the receptor field. spacing <= 0 selects GridSpacing.
// Building is O(R * lattice) and is intended to be done once per receptor.
func NewGrid(rec, lig *Topology, opts Options, spacing float64) (*Grid, error) {
	if spacing <= 0 {
		spacing = GridSpacing
	}
	if len(rec.Pos) == 0 {
		return nil, fmt.Errorf("forcefield: grid over empty receptor")
	}
	g := &Grid{lig: lig, opts: opts, spacing: spacing}
	box := vec.BoundPoints(rec.Pos).Pad(Cutoff + spacing)
	g.origin = box.Lo
	size := box.Size()
	g.nx = int(size.X/spacing) + 2
	g.ny = int(size.Y/spacing) + 2
	g.nz = int(size.Z/spacing) + 2
	n := g.nx * g.ny * g.nz

	// Which ligand types actually occur; only those grids are built.
	present := map[uint8]bool{}
	for _, t := range lig.Type {
		present[t] = true
	}
	g.values = make([][]float32, numTypes)
	for t := range g.values {
		if present[uint8(t)] {
			g.values[t] = make([]float32, n)
		}
	}
	if opts.Coulomb {
		g.charge = make([]float32, n)
	}

	// Tabulate with a receptor-side cell list so each lattice point only
	// visits nearby atoms.
	cl := NewCellList(rec, lig, opts)
	table := NewPairTable()
	const cutoff2 = Cutoff * Cutoff
	for ix := 0; ix < g.nx; ix++ {
		for iy := 0; iy < g.ny; iy++ {
			for iz := 0; iz < g.nz; iz++ {
				p := vec.V3{
					X: g.origin.X + float64(ix)*spacing,
					Y: g.origin.Y + float64(iy)*spacing,
					Z: g.origin.Z + float64(iz)*spacing,
				}
				idx := (ix*g.ny+iy)*g.nz + iz
				// Accumulate per-type LJ and unit-charge Coulomb.
				cl.visitNear(p, func(ai int32) {
					r2 := rec.Pos[ai].Dist2(p)
					if r2 > cutoff2 {
						return
					}
					if r2 < minDist2 {
						r2 = minDist2
					}
					inv2 := 1 / r2
					inv6 := inv2 * inv2 * inv2
					rt := rec.Type[ai]
					for t := range g.values {
						if g.values[t] == nil {
							continue
						}
						pp := table.At(rt, uint8(t))
						g.values[t][idx] += float32(inv6 * (pp.A*inv6 - pp.B))
					}
					if g.charge != nil {
						g.charge[idx] += float32(coulombK * rec.Charge[ai] * inv2 / 4)
					}
				})
			}
		}
	}
	return g, nil
}

// visitNear calls fn with the index of every receptor atom in the 27 cells
// around p.
func (c *CellList) visitNear(p vec.V3, fn func(i int32)) {
	fx := (p.X - c.origin.X) / c.cellSize
	fy := (p.Y - c.origin.Y) / c.cellSize
	fz := (p.Z - c.origin.Z) / c.cellSize
	ix0, ix1 := neighborRange(fx, c.nx)
	iy0, iy1 := neighborRange(fy, c.ny)
	iz0, iz1 := neighborRange(fz, c.nz)
	for ix := ix0; ix <= ix1; ix++ {
		for iy := iy0; iy <= iy1; iy++ {
			for iz := iz0; iz <= iz1; iz++ {
				cell := (ix*c.ny+iy)*c.nz + iz
				for k := c.cellStart[cell]; k < c.cellStart[cell+1]; k++ {
					fn(c.atomIdx[k])
				}
			}
		}
	}
}

// Name implements Scorer.
func (g *Grid) Name() string { return "grid" }

// Score implements Scorer by trilinear interpolation of the tabulated
// field at each ligand atom. With Options.Lattice32 the interpolation
// arithmetic runs in float32 (the lattice itself is float32 either way).
func (g *Grid) Score(ligPos []vec.V3) float64 {
	if g.opts.Lattice32 {
		return g.score32(ligPos)
	}
	e := 0.0
	for j, p := range ligPos {
		t := g.lig.Type[j]
		vals := g.values[t]
		if vals == nil {
			continue
		}
		e += g.sample(vals, p)
		if g.charge != nil {
			e += g.sample(g.charge, p) * g.lig.Charge[j]
		}
	}
	return e
}

// score32 is the float32 lattice path: blend weights, interpolation and the
// per-pose accumulator all stay in float32, which keeps the working set in
// single precision exactly as the paper's GPU kernels do.
func (g *Grid) score32(ligPos []vec.V3) float64 {
	var e float32
	for j, p := range ligPos {
		t := g.lig.Type[j]
		vals := g.values[t]
		if vals == nil {
			continue
		}
		e += g.sample32(vals, p)
		if g.charge != nil {
			e += g.sample32(g.charge, p) * float32(g.lig.Charge[j])
		}
	}
	return float64(e)
}

// ScoreBatch implements BatchScorer: grid scoring has no receptor pass to
// amortize (each pose is O(L) interpolations), so the batch form simply
// evaluates the poses back to back, bit-identical to looped Score.
func (g *Grid) ScoreBatch(poses [][]vec.V3, out []float64) {
	checkBatch(poses, out)
	for i, pose := range poses {
		out[i] = g.Score(pose)
	}
}

// sample trilinearly interpolates field at p; points outside the lattice
// return 0 (they are beyond the cutoff by construction).
func (g *Grid) sample(field []float32, p vec.V3) float64 {
	fx := (p.X - g.origin.X) / g.spacing
	fy := (p.Y - g.origin.Y) / g.spacing
	fz := (p.Z - g.origin.Z) / g.spacing
	ix, iy, iz := int(fx), int(fy), int(fz)
	if fx < 0 || fy < 0 || fz < 0 || ix >= g.nx-1 || iy >= g.ny-1 || iz >= g.nz-1 {
		return 0
	}
	tx, ty, tz := fx-float64(ix), fy-float64(iy), fz-float64(iz)
	at := func(dx, dy, dz int) float64 {
		return float64(field[((ix+dx)*g.ny+(iy+dy))*g.nz+(iz+dz)])
	}
	// Interpolate along z, then y, then x.
	c00 := at(0, 0, 0)*(1-tz) + at(0, 0, 1)*tz
	c01 := at(0, 1, 0)*(1-tz) + at(0, 1, 1)*tz
	c10 := at(1, 0, 0)*(1-tz) + at(1, 0, 1)*tz
	c11 := at(1, 1, 0)*(1-tz) + at(1, 1, 1)*tz
	c0 := c00*(1-ty) + c01*ty
	c1 := c10*(1-ty) + c11*ty
	return c0*(1-tx) + c1*tx
}

// sample32 is sample with the interpolation arithmetic in float32.
func (g *Grid) sample32(field []float32, p vec.V3) float32 {
	fx := (p.X - g.origin.X) / g.spacing
	fy := (p.Y - g.origin.Y) / g.spacing
	fz := (p.Z - g.origin.Z) / g.spacing
	ix, iy, iz := int(fx), int(fy), int(fz)
	if fx < 0 || fy < 0 || fz < 0 || ix >= g.nx-1 || iy >= g.ny-1 || iz >= g.nz-1 {
		return 0
	}
	tx := float32(fx - float64(ix))
	ty := float32(fy - float64(iy))
	tz := float32(fz - float64(iz))
	at := func(dx, dy, dz int) float32 {
		return field[((ix+dx)*g.ny+(iy+dy))*g.nz+(iz+dz)]
	}
	c00 := at(0, 0, 0)*(1-tz) + at(0, 0, 1)*tz
	c01 := at(0, 1, 0)*(1-tz) + at(0, 1, 1)*tz
	c10 := at(1, 0, 0)*(1-tz) + at(1, 0, 1)*tz
	c11 := at(1, 1, 0)*(1-tz) + at(1, 1, 1)*tz
	c0 := c00*(1-ty) + c01*ty
	c1 := c10*(1-ty) + c11*ty
	return c0*(1-tx) + c1*tx
}

// MemoryBytes returns the grid's approximate memory footprint, the
// quantity that forces large-molecule runs onto multiGPU systems in the
// paper's motivation.
func (g *Grid) MemoryBytes() int64 {
	var total int64
	for _, v := range g.values {
		total += int64(len(v)) * 4
	}
	total += int64(len(g.charge)) * 4
	return total
}
