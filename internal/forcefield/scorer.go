package forcefield

import (
	"fmt"

	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/vec"
)

// Cutoff is the interaction cutoff in angstroms. Pairs farther apart
// contribute nothing; this is the standard treatment for short-range LJ
// interactions and is what makes the cell-list scorer possible.
const Cutoff = 12.0

// minDist2 clamps the squared pair distance so that overlapping atoms yield
// a large-but-finite clash penalty instead of an infinity that would poison
// metaheuristic comparisons.
const minDist2 = 0.25 // (0.5 A)^2

// Options selects the scoring terms.
type Options struct {
	// Coulomb adds the electrostatic term with distance-dependent
	// dielectric (the paper's future-work scoring extension).
	Coulomb bool
	// Lattice32 makes the grid scorer interpolate its tabulated lattice in
	// float32 instead of float64. The lattice is stored in float32 either
	// way; this flag moves the interpolation arithmetic to float32 too,
	// halving the precision of the blend weights for a small speed gain.
	// Scores differ from the float64 path in the low bits, so rankings are
	// only guaranteed rank-concordant within tolerance, not byte-identical.
	// Ignored by the exact (direct/tiled/celllist) scorers.
	Lattice32 bool
}

// coulombK is the electrostatic constant in kcal*A/(mol*e^2).
const coulombK = 332.0636

// Topology is a molecule flattened to the arrays the scoring kernels
// consume: positions, force-field type indices, and partial charges.
type Topology struct {
	Pos    []vec.V3
	Type   []uint8
	Charge []float64
}

// NewTopology extracts the scoring topology of a molecule.
func NewTopology(m *molecule.Molecule) *Topology {
	t := &Topology{
		Pos:    make([]vec.V3, m.NumAtoms()),
		Type:   make([]uint8, m.NumAtoms()),
		Charge: make([]float64, m.NumAtoms()),
	}
	for i, a := range m.Atoms {
		t.Pos[i] = a.Pos
		t.Type[i] = uint8(a.Element)
		t.Charge[i] = a.Charge
	}
	return t
}

// Len returns the number of atoms.
func (t *Topology) Len() int { return len(t.Pos) }

// Scorer evaluates the interaction energy (kcal/mol) between the fixed
// receptor it was built for and a posed ligand. Lower is better. ligPos must
// be parallel to the ligand topology passed at construction; implementations
// must be safe for concurrent Score calls.
type Scorer interface {
	// Score returns the receptor-ligand interaction energy for ligand
	// atoms at ligPos.
	Score(ligPos []vec.V3) float64
	// Name identifies the implementation for reports and benchmarks.
	Name() string
}

// BatchScorer is a Scorer that can evaluate many poses per receptor pass —
// the batched-kernel evaluation scheme every production docking engine uses
// (and the paper's mapping of candidate solutions to CUDA warps), brought
// to the host scorers. Implementations must make ScoreBatch bit-identical
// to calling Score on each pose in order: batching is a throughput
// optimization, never a semantic one.
type BatchScorer interface {
	Scorer
	// ScoreBatch stores Score(poses[i]) into out[i] for every i. It panics
	// unless len(out) == len(poses). Implementations allocate nothing, so
	// steady-state batched scoring with reused pose buffers is alloc-free.
	ScoreBatch(poses [][]vec.V3, out []float64)
}

// checkBatch validates a ScoreBatch call's buffer lengths.
func checkBatch(poses [][]vec.V3, out []float64) {
	if len(poses) != len(out) {
		panic(fmt.Sprintf("forcefield: batch has %d poses but %d outputs", len(poses), len(out)))
	}
}

// Direct is the reference scorer: the full O(R*L) double loop over atom
// pairs. It defines the semantics the other scorers must reproduce.
type Direct struct {
	rec   *Topology
	lig   *Topology
	table *PairTable
	opts  Options
}

// NewDirect returns the reference scorer for the given receptor and ligand
// topologies.
func NewDirect(rec, lig *Topology, opts Options) *Direct {
	return &Direct{rec: rec, lig: lig, table: NewPairTable(), opts: opts}
}

// Name implements Scorer.
func (d *Direct) Name() string { return "direct" }

// Score implements Scorer.
func (d *Direct) Score(ligPos []vec.V3) float64 {
	if len(ligPos) != d.lig.Len() {
		panic(fmt.Sprintf("forcefield: ligand pose has %d atoms, topology has %d", len(ligPos), d.lig.Len()))
	}
	const cutoff2 = Cutoff * Cutoff
	e := 0.0
	for i, rp := range d.rec.Pos {
		rt := d.rec.Type[i]
		rq := d.rec.Charge[i]
		for j, lp := range ligPos {
			r2 := rp.Dist2(lp)
			if r2 > cutoff2 {
				continue
			}
			if r2 < minDist2 {
				r2 = minDist2
			}
			p := d.table.At(rt, d.lig.Type[j])
			inv2 := 1 / r2
			inv6 := inv2 * inv2 * inv2
			e += inv6 * (p.A*inv6 - p.B)
			if d.opts.Coulomb {
				// Distance-dependent dielectric eps(r) = 4r gives a
				// 1/r^2 effective interaction.
				e += coulombK * rq * d.lig.Charge[j] * inv2 / 4
			}
		}
	}
	return e
}

// ScoreBatch implements BatchScorer by looping Score: the reference the
// batched kernels are differentially tested against.
func (d *Direct) ScoreBatch(poses [][]vec.V3, out []float64) {
	checkBatch(poses, out)
	for i, pose := range poses {
		out[i] = d.Score(pose)
	}
}
