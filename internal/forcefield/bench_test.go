package forcefield

import (
	"testing"

	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/rng"
	"github.com/metascreen/metascreen/internal/vec"
)

// benchFixtures builds a 2BSM-scale scoring problem with a surface pose.
func benchFixtures(b *testing.B) (rec, lig *Topology, pose []vec.V3) {
	b.Helper()
	recM := molecule.Synthetic2BSMReceptor()
	ligM := molecule.Synthetic2BSMLigand()
	rec = NewTopology(recM)
	lig = NewTopology(ligM)
	r := rng.New(1)
	center := recM.Centroid().Add(r.UnitVector().Scale(recM.Radius() * 0.9))
	pose = make([]vec.V3, lig.Len())
	for i, p := range lig.Pos {
		pose[i] = p.Add(center)
	}
	return rec, lig, pose
}

func BenchmarkDirect2BSM(b *testing.B) {
	rec, lig, pose := benchFixtures(b)
	s := NewDirect(rec, lig, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Score(pose)
	}
}

func BenchmarkTiled2BSM(b *testing.B) {
	rec, lig, pose := benchFixtures(b)
	s := NewTiled(rec, lig, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Score(pose)
	}
}

func BenchmarkCellList2BSM(b *testing.B) {
	rec, lig, pose := benchFixtures(b)
	s := NewCellList(rec, lig, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Score(pose)
	}
}

func BenchmarkGrid2BSM(b *testing.B) {
	rec, lig, pose := benchFixtures(b)
	g, err := NewGrid(rec, lig, Options{}, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Score(pose)
	}
}

func BenchmarkGridBuild(b *testing.B) {
	rec := NewTopology(molecule.SyntheticProtein("rec", 1000, 5))
	lig := NewTopology(molecule.SyntheticLigand("lig", 20, 6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewGrid(rec, lig, Options{}, 1.0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScoreForces2BSM(b *testing.B) {
	rec, lig, pose := benchFixtures(b)
	s := NewTiled(rec, lig, Options{})
	forces := make([]vec.V3, lig.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScoreForces(pose, forces)
	}
}
