// Package forcefield implements the scoring functions used to evaluate
// protein-ligand conformations. Following the paper (section 3.1), the
// primary score is the Lennard-Jones 12-6 potential; an optional Coulomb
// (electrostatic) term is provided as the extension the paper's conclusions
// anticipate ("many other types of scoring functions still to be explored").
//
// Three scorer implementations share one semantics:
//
//   - Direct: the reference O(R*L) double loop.
//   - Tiled: the same loop cache-blocked over receptor tiles in
//     structure-of-arrays form; this mirrors the CUDA shared-memory tiling
//     described in the paper's section 5 and is the kernel the GPU
//     simulator models.
//   - CellList: a neighbour-grid scorer exploiting the interaction cutoff.
package forcefield

import (
	"math"

	"github.com/metascreen/metascreen/internal/molecule"
)

// LJParam holds the per-element Lennard-Jones well depth epsilon
// (kcal/mol) and collision diameter sigma (angstrom).
type LJParam struct {
	Epsilon float64
	Sigma   float64
}

// ljByElement holds AMBER-like parameters per element, indexed by
// molecule.Element.
var ljByElement = [...]LJParam{
	molecule.Hydrogen:   {Epsilon: 0.0157, Sigma: 2.65},
	molecule.Carbon:     {Epsilon: 0.0860, Sigma: 3.40},
	molecule.Nitrogen:   {Epsilon: 0.1700, Sigma: 3.25},
	molecule.Oxygen:     {Epsilon: 0.2100, Sigma: 2.96},
	molecule.Sulfur:     {Epsilon: 0.2500, Sigma: 3.56},
	molecule.Phosphorus: {Epsilon: 0.2000, Sigma: 3.74},
}

// numTypes is the number of distinct force-field atom types.
const numTypes = len(ljByElement)

// PairParam holds the pre-mixed coefficients for a pair of atom types in the
// form the kernels consume: E(r) = A/r^12 - B/r^6 with A = 4*eps*sigma^12
// and B = 4*eps*sigma^6.
type PairParam struct {
	A, B float64
}

// PairTable is the dense numTypes x numTypes matrix of pre-mixed pair
// coefficients under Lorentz-Berthelot mixing rules (arithmetic-mean sigma,
// geometric-mean epsilon).
type PairTable [numTypes * numTypes]PairParam

// NewPairTable builds the mixed-parameter table.
func NewPairTable() *PairTable {
	var t PairTable
	for i := 0; i < numTypes; i++ {
		for j := 0; j < numTypes; j++ {
			eps := math.Sqrt(ljByElement[i].Epsilon * ljByElement[j].Epsilon)
			sig := (ljByElement[i].Sigma + ljByElement[j].Sigma) / 2
			s2 := sig * sig
			s6 := s2 * s2 * s2
			t[i*numTypes+j] = PairParam{A: 4 * eps * s6 * s6, B: 4 * eps * s6}
		}
	}
	return &t
}

// At returns the mixed coefficients for the type pair (i, j).
func (t *PairTable) At(i, j uint8) PairParam { return t[int(i)*numTypes+int(j)] }
