package forcefield

import (
	"math"
	"testing"

	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/rng"
	"github.com/metascreen/metascreen/internal/vec"
)

// Property-based checks: instead of one fixture, these tests sweep
// randomized receptor/ligand pairs (sizes and geometries drawn from a
// seeded generator, so failures reproduce) and assert invariants the
// scorers must hold for *any* input — grid/direct agreement, finiteness,
// and graceful handling of degenerate topologies.

// randomPair builds a random synthetic receptor/ligand topology pair.
func randomPair(r *rng.Source) (*Topology, *Topology) {
	recAtoms := 20 + r.Intn(280)
	ligAtoms := 3 + r.Intn(18)
	rec := NewTopology(molecule.SyntheticProtein("rec", recAtoms, r.Uint64()))
	lig := NewTopology(molecule.SyntheticLigand("lig", ligAtoms, r.Uint64()))
	return rec, lig
}

func TestPropertyGridMatchesDirectAtLatticePoints(t *testing.T) {
	// At exact lattice points trilinear interpolation is the identity, so
	// for every receptor/ligand pair the grid must reproduce the direct
	// scorer up to float32 tabulation rounding.
	r := rng.New(202)
	for trial := 0; trial < 15; trial++ {
		rec, lig := randomPair(r)
		for _, opts := range []Options{{}, {Coulomb: true}} {
			g, err := NewGrid(rec, lig, opts, 1.0)
			if err != nil {
				t.Fatalf("trial %d: NewGrid: %v", trial, err)
			}
			direct := NewDirect(rec, lig, opts)
			for pose := 0; pose < 5; pose++ {
				p := latticePose(g, r, lig.Len())
				want := direct.Score(p)
				got := g.Score(p)
				tol := 1e-3 * (1 + math.Abs(want))
				if math.Abs(got-want) > tol {
					t.Errorf("trial %d pose %d (coulomb=%v): grid %v vs direct %v (tol %v)",
						trial, pose, opts.Coulomb, got, want, tol)
				}
			}
		}
	}
}

func TestPropertyGridOffLatticeFinite(t *testing.T) {
	// Off lattice the grid interpolates, so exact agreement is not a
	// property — but for any pose the score must be finite and poses far
	// outside the padded box must contribute exactly zero.
	r := rng.New(203)
	for trial := 0; trial < 15; trial++ {
		rec, lig := randomPair(r)
		g, err := NewGrid(rec, lig, Options{}, 0)
		if err != nil {
			t.Fatalf("trial %d: NewGrid: %v", trial, err)
		}
		box := vec.BoundPoints(rec.Pos)
		pose := make([]vec.V3, lig.Len())
		for k := 0; k < 10; k++ {
			for i := range pose {
				pose[i] = vec.V3{
					X: box.Lo.X + r.Float64()*(box.Hi.X-box.Lo.X),
					Y: box.Lo.Y + r.Float64()*(box.Hi.Y-box.Lo.Y),
					Z: box.Lo.Z + r.Float64()*(box.Hi.Z-box.Lo.Z),
				}
			}
			if e := g.Score(pose); math.IsNaN(e) || math.IsInf(e, 0) {
				t.Fatalf("trial %d: non-finite grid score %v", trial, e)
			}
			if e := NewDirect(rec, lig, Options{}).Score(pose); math.IsNaN(e) || math.IsInf(e, 0) {
				t.Fatalf("trial %d: non-finite direct score %v", trial, e)
			}
		}
		// Far outside the padded box: beyond the cutoff of every receptor
		// atom, so both scorers must return exactly zero.
		far := box.Hi.X + 10*Cutoff
		for i := range pose {
			pose[i] = vec.V3{X: far + float64(i), Y: far, Z: far}
		}
		if e := g.Score(pose); e != 0 {
			t.Errorf("trial %d: far-away pose scores %v on grid, want 0", trial, e)
		}
		if e := NewDirect(rec, lig, Options{}).Score(pose); e != 0 {
			t.Errorf("trial %d: far-away pose scores %v direct, want 0", trial, e)
		}
	}
}

func TestPropertyGridRanksLikeDirect(t *testing.T) {
	// The docking-relevant property off lattice: over moderate-energy
	// poses, the grid orders poses like the reference scorer (this is
	// what the metaheuristic consumes). Strict ordering is too strong
	// near the steep repulsive wall, so — as in the fixture-based ranking
	// test — the property is high Kendall concordance, here aggregated
	// over randomized receptor/ligand pairs.
	r := rng.New(204)
	concordant, total := 0, 0
	for trial := 0; trial < 8; trial++ {
		rec, lig := randomPair(r)
		g, err := NewGrid(rec, lig, Options{}, 0.5)
		if err != nil {
			t.Fatalf("trial %d: NewGrid: %v", trial, err)
		}
		direct := NewDirect(rec, lig, Options{})
		type scored struct{ exact, approx float64 }
		var pts []scored
		for attempt := 0; attempt < 200 && len(pts) < 8; attempt++ {
			pose := latticePose(g, r, lig.Len())
			// Perturb off lattice by up to a quarter spacing.
			for i := range pose {
				pose[i].X += (r.Float64() - 0.5) * 0.25
				pose[i].Y += (r.Float64() - 0.5) * 0.25
				pose[i].Z += (r.Float64() - 0.5) * 0.25
			}
			want := direct.Score(pose)
			if math.Abs(want) < 0.5 || want > 30 {
				continue // skip empty space and deep clashes
			}
			pts = append(pts, scored{exact: want, approx: g.Score(pose)})
		}
		for i := 0; i < len(pts); i++ {
			for j := i + 1; j < len(pts); j++ {
				if math.Abs(pts[i].exact-pts[j].exact) < 2 {
					continue // too close to call through interpolation error
				}
				total++
				if (pts[i].exact < pts[j].exact) == (pts[i].approx < pts[j].approx) {
					concordant++
				}
			}
		}
	}
	if total < 20 {
		t.Fatalf("only %d comparable pose pairs collected", total)
	}
	if frac := float64(concordant) / float64(total); frac < 0.85 {
		t.Errorf("grid preserves only %.0f%% of pose orderings across random pairs (%d/%d)",
			100*frac, concordant, total)
	}
}

func TestPropertyNewGridDegenerate(t *testing.T) {
	lig := NewTopology(molecule.SyntheticLigand("lig", 5, 71))

	t.Run("SingleAtomReceptor", func(t *testing.T) {
		rec := &Topology{
			Pos:    []vec.V3{{X: 1, Y: 2, Z: 3}},
			Type:   []uint8{uint8(molecule.Carbon)},
			Charge: []float64{0.1},
		}
		g, err := NewGrid(rec, lig, Options{Coulomb: true}, 1.0)
		if err != nil {
			t.Fatalf("NewGrid over single atom: %v", err)
		}
		direct := NewDirect(rec, lig, Options{Coulomb: true})
		pose := latticePose(g, rng.New(72), lig.Len())
		got, want := g.Score(pose), direct.Score(pose)
		if math.Abs(got-want) > 1e-3*(1+math.Abs(want)) {
			t.Errorf("single-atom receptor: grid %v vs direct %v", got, want)
		}
	})

	t.Run("ZeroExtentLigand", func(t *testing.T) {
		// All ligand atoms collapsed onto one point: legal input, must
		// score finitely with the clash clamp, never NaN.
		rec := NewTopology(molecule.SyntheticProtein("rec", 50, 73))
		zl := &Topology{
			Pos:    make([]vec.V3, 4),
			Type:   make([]uint8, 4),
			Charge: make([]float64, 4),
		}
		center := rec.Pos[0]
		pose := make([]vec.V3, 4)
		for i := range pose {
			pose[i] = center
		}
		g, err := NewGrid(rec, zl, Options{}, 1.0)
		if err != nil {
			t.Fatalf("NewGrid with zero-extent ligand: %v", err)
		}
		if e := g.Score(pose); math.IsNaN(e) || math.IsInf(e, 0) {
			t.Errorf("zero-extent ligand grid score %v, want finite", e)
		}
		if e := NewDirect(rec, zl, Options{}).Score(pose); math.IsNaN(e) || math.IsInf(e, 0) {
			t.Errorf("zero-extent ligand direct score %v, want finite", e)
		}
	})

	t.Run("ZeroExtentReceptor", func(t *testing.T) {
		// Every receptor atom at the same point: a zero-size bounding box
		// must still build a (tiny) valid lattice.
		rec := &Topology{
			Pos:    []vec.V3{{}, {}, {}},
			Type:   []uint8{0, 1, 2},
			Charge: []float64{0, 0, 0},
		}
		g, err := NewGrid(rec, lig, Options{}, 1.0)
		if err != nil {
			t.Fatalf("NewGrid over zero-extent receptor: %v", err)
		}
		pose := make([]vec.V3, lig.Len())
		if e := g.Score(pose); math.IsNaN(e) || math.IsInf(e, 0) {
			t.Errorf("zero-extent receptor grid score %v, want finite", e)
		}
	})

	t.Run("EmptyReceptorRejected", func(t *testing.T) {
		if _, err := NewGrid(&Topology{}, lig, Options{}, 1.0); err == nil {
			t.Fatal("NewGrid over empty receptor should error, got nil")
		}
	})

	t.Run("EmptyLigand", func(t *testing.T) {
		rec := NewTopology(molecule.SyntheticProtein("rec", 30, 74))
		g, err := NewGrid(rec, &Topology{}, Options{}, 1.0)
		if err != nil {
			t.Fatalf("NewGrid with empty ligand: %v", err)
		}
		if e := g.Score(nil); e != 0 {
			t.Errorf("empty ligand scores %v, want 0", e)
		}
	})
}
