package forcefield

import (
	"sort"

	"github.com/metascreen/metascreen/internal/vec"
)

// NeighborList is the precomputed receptor neighbourhood of one search
// region: exactly the receptor atoms whose distance to the region's box is
// at most the interaction cutoff, packed in structure-of-arrays form in
// ascending original-atom order.
//
// Metaheuristic search confines every pose of a spot to a fixed region, so
// the list is built once per (receptor, ligand, spot) and reused across all
// generations — each scoring call then streams a compact candidate array
// instead of re-walking the receptor's spatial grid per ligand atom. This
// is the host analogue of staging a binding-site neighbourhood once in GPU
// shared memory and reusing it for the whole population.
type NeighborList struct {
	lig    *Topology
	table  *PairTable
	opts   Options
	region vec.AABB

	// idx holds the original receptor atom indices, ascending.
	idx []int32
	// Atom data in idx order.
	x, y, z []float64
	typ     []uint8
	chg     []float64
}

// NewNeighborList gathers the receptor atoms within Cutoff of region using
// cell-list bins (O(region volume), not O(receptor)). The region must
// contain every ligand atom of every pose the list will score; Covers
// checks a pose at runtime so callers can fall back to a full scorer for
// out-of-region poses.
func NewNeighborList(cells *CellList, rec *Topology, region vec.AABB) *NeighborList {
	nl := &NeighborList{
		lig: cells.lig, table: cells.table, opts: cells.opts, region: region,
	}
	if region.Empty() || rec.Len() == 0 {
		return nl
	}
	const cutoff2 = Cutoff * Cutoff
	// Cells overlapping the region padded by the cutoff; cellSize==Cutoff,
	// so one extra cell ring on each side suffices.
	pad := region.Pad(Cutoff)
	lo := pad.Lo.Sub(cells.origin)
	hi := pad.Hi.Sub(cells.origin)
	ix0 := clamp(int(lo.X/cells.cellSize), 0, cells.nx-1)
	iy0 := clamp(int(lo.Y/cells.cellSize), 0, cells.ny-1)
	iz0 := clamp(int(lo.Z/cells.cellSize), 0, cells.nz-1)
	ix1 := clamp(int(hi.X/cells.cellSize), 0, cells.nx-1)
	iy1 := clamp(int(hi.Y/cells.cellSize), 0, cells.ny-1)
	iz1 := clamp(int(hi.Z/cells.cellSize), 0, cells.nz-1)
	for ix := ix0; ix <= ix1; ix++ {
		for iy := iy0; iy <= iy1; iy++ {
			row := (ix*cells.ny + iy) * cells.nz
			for k := cells.cellStart[row+iz0]; k < cells.cellStart[row+iz1+1]; k++ {
				p := vec.V3{X: cells.px[k], Y: cells.py[k], Z: cells.pz[k]}
				if region.Dist2ToPoint(p) <= cutoff2 {
					nl.idx = append(nl.idx, cells.atomIdx[k])
				}
			}
		}
	}
	// Cell traversal order is not atom order; restore ascending indices so
	// the summation order is deterministic and matches Direct's.
	sort.Slice(nl.idx, func(a, b int) bool { return nl.idx[a] < nl.idx[b] })
	n := len(nl.idx)
	nl.x = make([]float64, n)
	nl.y = make([]float64, n)
	nl.z = make([]float64, n)
	nl.typ = make([]uint8, n)
	nl.chg = make([]float64, n)
	for i, ai := range nl.idx {
		p := rec.Pos[ai]
		nl.x[i], nl.y[i], nl.z[i] = p.X, p.Y, p.Z
		nl.typ[i] = rec.Type[ai]
		nl.chg[i] = rec.Charge[ai]
	}
	return nl
}

// Len returns the number of receptor atoms in the list.
func (nl *NeighborList) Len() int { return len(nl.idx) }

// Indices returns the gathered receptor atom indices in ascending order.
// Callers must not mutate the slice.
func (nl *NeighborList) Indices() []int32 { return nl.idx }

// Region returns the ligand-atom region the list covers.
func (nl *NeighborList) Region() vec.AABB { return nl.region }

// Covers reports whether every atom of the pose lies inside the covered
// region, i.e. whether Score over this list is exact for the pose.
func (nl *NeighborList) Covers(pose []vec.V3) bool {
	for _, p := range pose {
		if !nl.region.Contains(p) {
			return false
		}
	}
	return true
}

// Name implements Scorer.
func (nl *NeighborList) Name() string { return "neighborlist" }

// Score implements Scorer over the gathered candidate atoms. The caller
// must ensure the pose is covered (see Covers); atoms outside the region
// would silently miss interactions.
func (nl *NeighborList) Score(ligPos []vec.V3) float64 {
	const cutoff2 = Cutoff * Cutoff
	e := 0.0
	for j, lp := range ligPos {
		lt := int32(nl.lig.Type[j])
		lq := nl.lig.Charge[j]
		for k := range nl.x {
			dx := nl.x[k] - lp.X
			dy := nl.y[k] - lp.Y
			dz := nl.z[k] - lp.Z
			r2 := dx*dx + dy*dy + dz*dz
			if r2 > cutoff2 {
				continue
			}
			if r2 < minDist2 {
				r2 = minDist2
			}
			p := nl.table[int32(nl.typ[k])*int32(numTypes)+lt]
			inv2 := 1 / r2
			inv6 := inv2 * inv2 * inv2
			e += inv6 * (p.A*inv6 - p.B)
			if nl.opts.Coulomb {
				e += coulombK * nl.chg[k] * lq * inv2 / 4
			}
		}
	}
	return e
}

// ScoreBatch implements BatchScorer: one pass per pose over the compact
// candidate arrays, bit-identical to looped Score.
func (nl *NeighborList) ScoreBatch(poses [][]vec.V3, out []float64) {
	checkBatch(poses, out)
	for i, pose := range poses {
		out[i] = nl.Score(pose)
	}
}
