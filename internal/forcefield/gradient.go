package forcefield

import "github.com/metascreen/metascreen/internal/vec"

// GradientScorer extends scoring with analytic derivatives: the force on
// every ligand atom, from which a rigid-body gradient (net force and
// torque) follows. It powers gradient-descent local search, the
// deterministic alternative to the stochastic Improve moves.
type GradientScorer interface {
	Scorer
	// ScoreForces returns the energy and writes the per-atom forces
	// (-dE/dpos, kcal/mol/A) into forces, which must have ligand length.
	ScoreForces(ligPos []vec.V3, forces []vec.V3) float64
}

// ScoreForces implements GradientScorer on the tiled kernel.
//
// For E = A/r^12 - B/r^6 (+ q1 q2 k / (4 r^2)), the force on the ligand
// atom is -dE/dl = (12A/r^14 - 6B/r^8 + 2 q1 q2 k / (4 r^4)) * (l - r_rec).
// Inside the clash clamp the energy is flat, so the force is zero there —
// matching the scorer exactly, which gradient-descent correctness needs.
func (t *Tiled) ScoreForces(ligPos []vec.V3, forces []vec.V3) float64 {
	if len(forces) != len(ligPos) {
		panic("forcefield: forces buffer length mismatch")
	}
	for i := range forces {
		forces[i] = vec.Zero
	}
	const cutoff2 = Cutoff * Cutoff
	e := 0.0
	for base := 0; base < t.n; base += TileSize {
		end := base + TileSize
		if end > t.n {
			end = t.n
		}
		for j, lp := range ligPos {
			lt := t.lig.Type[j]
			lq := t.lig.Charge[j]
			var f vec.V3
			for i := base; i < end; i++ {
				dx := lp.X - t.x[i]
				dy := lp.Y - t.y[i]
				dz := lp.Z - t.z[i]
				r2 := dx*dx + dy*dy + dz*dz
				if r2 > cutoff2 {
					continue
				}
				clamped := false
				if r2 < minDist2 {
					r2 = minDist2
					clamped = true
				}
				p := t.table.At(t.typ[i], lt)
				inv2 := 1 / r2
				inv6 := inv2 * inv2 * inv2
				e += inv6 * (p.A*inv6 - p.B)
				var coef float64
				if !clamped {
					// -dE/dr * (1/r): (12A/r^13 - 6B/r^7)/r
					coef = (12*p.A*inv6 - 6*p.B) * inv6 * inv2
				}
				if t.opts.Coulomb {
					qq := coulombK * t.chg[i] * lq / 4
					e += qq * inv2
					if !clamped {
						coef += 2 * qq * inv2 * inv2
					}
				}
				if coef != 0 {
					f.X += coef * dx
					f.Y += coef * dy
					f.Z += coef * dz
				}
			}
			forces[j] = forces[j].Add(f)
		}
	}
	return e
}

// RigidGradient reduces per-atom forces to the rigid-body gradient of a
// pose: the net force (gradient of energy w.r.t. translation, negated) and
// the torque about the pose center.
func RigidGradient(ligPos []vec.V3, forces []vec.V3, center vec.V3) (force, torque vec.V3) {
	for i := range forces {
		force = force.Add(forces[i])
		torque = torque.Add(ligPos[i].Sub(center).Cross(forces[i]))
	}
	return force, torque
}
