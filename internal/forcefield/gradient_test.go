package forcefield

import (
	"math"
	"testing"

	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/rng"
	"github.com/metascreen/metascreen/internal/vec"
)

func gradFixtures(t *testing.T, opts Options) (*Tiled, *Topology) {
	t.Helper()
	rec := NewTopology(molecule.SyntheticProtein("rec", 400, 66))
	lig := NewTopology(molecule.SyntheticLigand("lig", 10, 67))
	return NewTiled(rec, lig, opts), lig
}

// numericalForce estimates -dE/dpos of atom j by central differences.
func numericalForce(s Scorer, pose []vec.V3, j int, h float64) vec.V3 {
	probe := func(d vec.V3) float64 {
		p := make([]vec.V3, len(pose))
		copy(p, pose)
		p[j] = p[j].Add(d)
		return s.Score(p)
	}
	return vec.V3{
		X: -(probe(vec.New(h, 0, 0)) - probe(vec.New(-h, 0, 0))) / (2 * h),
		Y: -(probe(vec.New(0, h, 0)) - probe(vec.New(0, -h, 0))) / (2 * h),
		Z: -(probe(vec.New(0, 0, h)) - probe(vec.New(0, 0, -h))) / (2 * h),
	}
}

func testForcesMatchNumerical(t *testing.T, opts Options) {
	t.Helper()
	s, lig := gradFixtures(t, opts)
	r := rng.New(68)
	forces := make([]vec.V3, lig.Len())
	checked := 0
	for trial := 0; trial < 200 && checked < 15; trial++ {
		pose := randomPose(r, lig.Len(), r.InSphere(30), 3)
		e := s.ScoreForces(pose, forces)
		if math.Abs(e) < 0.5 || math.Abs(e) > 200 {
			continue
		}
		checked++
		for j := 0; j < lig.Len(); j += 3 {
			want := numericalForce(s, pose, j, 1e-5)
			got := forces[j]
			scale := 1 + want.Norm()
			if got.Sub(want).Norm()/scale > 1e-3 {
				t.Errorf("trial %d atom %d: force %v, numerical %v", trial, j, got, want)
			}
		}
	}
	if checked < 5 {
		t.Fatal("not enough checkable poses")
	}
}

func TestForcesMatchNumericalLJ(t *testing.T) { testForcesMatchNumerical(t, Options{}) }

func TestForcesMatchNumericalCoulomb(t *testing.T) {
	testForcesMatchNumerical(t, Options{Coulomb: true})
}

func TestScoreForcesEnergyMatchesScore(t *testing.T) {
	s, lig := gradFixtures(t, Options{Coulomb: true})
	r := rng.New(69)
	forces := make([]vec.V3, lig.Len())
	for trial := 0; trial < 20; trial++ {
		pose := randomPose(r, lig.Len(), r.InSphere(30), 4)
		e1 := s.Score(pose)
		e2 := s.ScoreForces(pose, forces)
		if math.Abs(e1-e2) > 1e-9*(1+math.Abs(e1)) {
			t.Errorf("energy mismatch: %v vs %v", e1, e2)
		}
	}
}

func TestForcesZeroInsideClamp(t *testing.T) {
	// Overlapping atoms sit in the flat clamped region: zero force, so
	// gradient descent does not explode.
	rec := NewTopology(molecule.New("one", []molecule.Atom{
		{Element: molecule.Carbon, Pos: vec.Zero},
	}))
	lig := NewTopology(molecule.New("one", []molecule.Atom{
		{Element: molecule.Carbon, Pos: vec.Zero},
	}))
	s := NewTiled(rec, lig, Options{})
	forces := make([]vec.V3, 1)
	s.ScoreForces([]vec.V3{vec.New(0.1, 0, 0)}, forces)
	if forces[0] != vec.Zero {
		t.Errorf("clamped force = %v, want zero", forces[0])
	}
}

func TestScoreForcesPanicsOnBufferMismatch(t *testing.T) {
	s, _ := gradFixtures(t, Options{})
	defer func() {
		if recover() == nil {
			t.Error("no panic on short buffer")
		}
	}()
	s.ScoreForces(make([]vec.V3, 10), make([]vec.V3, 3))
}

func TestRigidGradient(t *testing.T) {
	// A single force at an offset produces that net force and the
	// corresponding torque r x F.
	pos := []vec.V3{vec.New(1, 0, 0), vec.New(-1, 0, 0)}
	forces := []vec.V3{vec.New(0, 2, 0), vec.Zero}
	f, tq := RigidGradient(pos, forces, vec.Zero)
	if !f.ApproxEq(vec.New(0, 2, 0), 1e-12) {
		t.Errorf("net force = %v", f)
	}
	if !tq.ApproxEq(vec.New(0, 0, 2), 1e-12) {
		t.Errorf("torque = %v", tq)
	}
}

func TestDescentAlongForceLowersEnergy(t *testing.T) {
	// Moving the whole ligand a small step along the net force must lower
	// the energy (first-order behaviour of the gradient).
	s, lig := gradFixtures(t, Options{})
	r := rng.New(70)
	forces := make([]vec.V3, lig.Len())
	checked := 0
	for trial := 0; trial < 300 && checked < 10; trial++ {
		pose := randomPose(r, lig.Len(), r.InSphere(30), 3)
		e := s.ScoreForces(pose, forces)
		f, _ := RigidGradient(pose, forces, vec.Centroid(pose))
		if math.Abs(e) < 1 || math.Abs(e) > 100 || f.Norm() < 1e-3 {
			continue
		}
		checked++
		step := f.Unit().Scale(1e-4)
		moved := make([]vec.V3, len(pose))
		for i := range pose {
			moved[i] = pose[i].Add(step)
		}
		if e2 := s.Score(moved); e2 >= e {
			t.Errorf("trial %d: step along force raised energy %v -> %v", trial, e, e2)
		}
	}
	if checked < 5 {
		t.Fatal("not enough checkable poses")
	}
}
