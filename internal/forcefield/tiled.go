package forcefield

import "github.com/metascreen/metascreen/internal/vec"

// TileSize is the number of receptor atoms per tile in the tiled scorer.
// It matches the shared-memory tile the paper's CUDA kernel stages: one
// warp-sized chunk of receptor data reused against every ligand atom.
const TileSize = 32

// Tiled scores with the receptor pre-packed into structure-of-arrays tiles.
// Each tile's coordinates are contiguous, so the inner loop streams through
// cache lines exactly the way the CUDA kernel streams shared memory; this is
// the host analogue of the paper's "tilling implementation via shared
// memory" and the kernel whose cost the GPU simulator models.
//
// ScoreBatch is the batched receptor pass: each tile is brought through the
// cache once and applied against every pose of the batch, instead of once
// per pose — the same reuse pattern that lets the paper's kernel amortize a
// shared-memory stage over a whole grid of conformations.
type Tiled struct {
	lig   *Topology
	table *PairTable
	opts  Options

	// Receptor in SoA tile order.
	x, y, z []float64
	typ     []uint8
	chg     []float64
	// rowBase[i] is typ[i]*numTypes, the precomputed pair-table row offset
	// of receptor atom i.
	rowBase []int32
	n       int
}

// NewTiled returns a tiled scorer for the given receptor and ligand.
func NewTiled(rec, lig *Topology, opts Options) *Tiled {
	n := rec.Len()
	t := &Tiled{
		lig: lig, table: NewPairTable(), opts: opts,
		x: make([]float64, n), y: make([]float64, n), z: make([]float64, n),
		typ: make([]uint8, n), chg: make([]float64, n),
		rowBase: make([]int32, n), n: n,
	}
	for i, p := range rec.Pos {
		t.x[i], t.y[i], t.z[i] = p.X, p.Y, p.Z
		t.typ[i] = rec.Type[i]
		t.chg[i] = rec.Charge[i]
		t.rowBase[i] = int32(rec.Type[i]) * int32(numTypes)
	}
	return t
}

// Name implements Scorer.
func (t *Tiled) Name() string { return "tiled" }

// tileEnergy accumulates the interaction of one pose with receptor atoms
// [base, end) onto e, in the fixed (ligand atom, receptor atom) order that
// both Score and ScoreBatch share — keeping the two bit-identical.
func (t *Tiled) tileEnergy(e float64, ligPos []vec.V3, base, end int) float64 {
	const cutoff2 = Cutoff * Cutoff
	for j, lp := range ligPos {
		lt := int32(t.lig.Type[j])
		lq := t.lig.Charge[j]
		for i := base; i < end; i++ {
			dx := t.x[i] - lp.X
			dy := t.y[i] - lp.Y
			dz := t.z[i] - lp.Z
			r2 := dx*dx + dy*dy + dz*dz
			if r2 > cutoff2 {
				continue
			}
			if r2 < minDist2 {
				r2 = minDist2
			}
			p := t.table[t.rowBase[i]+lt]
			inv2 := 1 / r2
			inv6 := inv2 * inv2 * inv2
			e += inv6 * (p.A*inv6 - p.B)
			if t.opts.Coulomb {
				e += coulombK * t.chg[i] * lq * inv2 / 4
			}
		}
	}
	return e
}

// Score implements Scorer.
func (t *Tiled) Score(ligPos []vec.V3) float64 {
	e := 0.0
	for base := 0; base < t.n; base += TileSize {
		end := base + TileSize
		if end > t.n {
			end = t.n
		}
		e = t.tileEnergy(e, ligPos, base, end)
	}
	return e
}

// ScoreBatch implements BatchScorer: the tile loop moves outermost, so each
// receptor tile is streamed from memory once per batch rather than once per
// pose. Every out[i] accumulates in exactly Score's order.
func (t *Tiled) ScoreBatch(poses [][]vec.V3, out []float64) {
	checkBatch(poses, out)
	for i := range out {
		out[i] = 0
	}
	for base := 0; base < t.n; base += TileSize {
		end := base + TileSize
		if end > t.n {
			end = t.n
		}
		for pi, pose := range poses {
			out[pi] = t.tileEnergy(out[pi], pose, base, end)
		}
	}
}

// PairOps returns the number of atom-pair interactions one Score call
// evaluates (before cutoff filtering). This is the work unit the GPU
// simulator's cost model charges for.
func (t *Tiled) PairOps() int { return t.n * t.lig.Len() }
