package forcefield

import (
	"math"

	"github.com/metascreen/metascreen/internal/vec"
)

// CellList scores through a uniform spatial grid over the receptor: each
// ligand atom only visits receptor atoms in the 27 cells around it, so the
// cost is proportional to the atoms actually within the cutoff rather than
// to the whole receptor. It is the fast scorer for Real-mode screening runs.
//
// Receptor atoms are stored sorted by cell in structure-of-arrays form, so
// a cell's atoms are contiguous in memory and the inner loop streams them
// without the index indirection a CSR-of-indices layout would need.
type CellList struct {
	lig   *Topology
	table *PairTable
	opts  Options

	origin     vec.V3
	cellSize   float64
	nx, ny, nz int

	// cellStart[c]..cellStart[c+1] indexes the cell-sorted SoA arrays.
	cellStart []int32
	// Receptor atom data in cell-sorted order (ascending original index
	// within each cell, so traversal order matches the old CSR layout).
	px, py, pz []float64
	typ        []uint8
	chg        []float64
	// atomIdx maps a cell-sorted slot back to the original receptor atom
	// index (used by grid tabulation's visitNear).
	atomIdx []int32
}

// NewCellList builds the neighbour grid with cell edge equal to the cutoff.
func NewCellList(rec, lig *Topology, opts Options) *CellList {
	c := &CellList{
		lig: lig, table: NewPairTable(), opts: opts,
		cellSize: Cutoff,
	}
	b := vec.BoundPoints(rec.Pos)
	if b.Empty() {
		b = vec.NewAABB(vec.Zero, vec.Zero)
	}
	c.origin = b.Lo
	size := b.Size()
	c.nx = int(size.X/c.cellSize) + 1
	c.ny = int(size.Y/c.cellSize) + 1
	c.nz = int(size.Z/c.cellSize) + 1

	nCells := c.nx * c.ny * c.nz
	counts := make([]int32, nCells+1)
	cellOf := make([]int32, len(rec.Pos))
	for i, p := range rec.Pos {
		cell := c.cellIndex(p)
		cellOf[i] = cell
		counts[cell+1]++
	}
	for i := 1; i <= nCells; i++ {
		counts[i] += counts[i-1]
	}
	c.cellStart = counts
	n := len(rec.Pos)
	c.px = make([]float64, n)
	c.py = make([]float64, n)
	c.pz = make([]float64, n)
	c.typ = make([]uint8, n)
	c.chg = make([]float64, n)
	c.atomIdx = make([]int32, n)
	cursor := make([]int32, nCells)
	for i, p := range rec.Pos {
		cell := cellOf[i]
		k := c.cellStart[cell] + cursor[cell]
		cursor[cell]++
		c.px[k], c.py[k], c.pz[k] = p.X, p.Y, p.Z
		c.typ[k] = rec.Type[i]
		c.chg[k] = rec.Charge[i]
		c.atomIdx[k] = int32(i)
	}
	return c
}

// cellIndex maps a position to its (clamped) flat cell index.
func (c *CellList) cellIndex(p vec.V3) int32 {
	ix := clamp(int((p.X-c.origin.X)/c.cellSize), 0, c.nx-1)
	iy := clamp(int((p.Y-c.origin.Y)/c.cellSize), 0, c.ny-1)
	iz := clamp(int((p.Z-c.origin.Z)/c.cellSize), 0, c.nz-1)
	return int32((ix*c.ny+iy)*c.nz + iz)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Name implements Scorer.
func (c *CellList) Name() string { return "celllist" }

// Score implements Scorer.
func (c *CellList) Score(ligPos []vec.V3) float64 {
	const cutoff2 = Cutoff * Cutoff
	e := 0.0
	for j, lp := range ligPos {
		lt := int32(c.lig.Type[j])
		lq := c.lig.Charge[j]
		// Cell coordinates of the ligand atom, unclamped so that atoms
		// outside the receptor box still scan the correct border cells.
		fx := (lp.X - c.origin.X) / c.cellSize
		fy := (lp.Y - c.origin.Y) / c.cellSize
		fz := (lp.Z - c.origin.Z) / c.cellSize
		ix0, ix1 := neighborRange(fx, c.nx)
		iy0, iy1 := neighborRange(fy, c.ny)
		iz0, iz1 := neighborRange(fz, c.nz)
		if ix0 > ix1 || iy0 > iy1 || iz0 > iz1 {
			continue // beyond the cutoff of every cell on some axis
		}
		for ix := ix0; ix <= ix1; ix++ {
			for iy := iy0; iy <= iy1; iy++ {
				// The z-neighbour cells are contiguous in the cell-sorted
				// arrays, so the three cells collapse into one linear scan.
				row := (ix*c.ny + iy) * c.nz
				lo := c.cellStart[row+iz0]
				hi := c.cellStart[row+iz1+1]
				for k := lo; k < hi; k++ {
					dx := c.px[k] - lp.X
					dy := c.py[k] - lp.Y
					dz := c.pz[k] - lp.Z
					r2 := dx*dx + dy*dy + dz*dz
					if r2 > cutoff2 {
						continue
					}
					if r2 < minDist2 {
						r2 = minDist2
					}
					p := c.table[int32(c.typ[k])*int32(numTypes)+lt]
					inv2 := 1 / r2
					inv6 := inv2 * inv2 * inv2
					e += inv6 * (p.A*inv6 - p.B)
					if c.opts.Coulomb {
						e += coulombK * c.chg[k] * lq * inv2 / 4
					}
				}
			}
		}
	}
	return e
}

// ScoreBatch implements BatchScorer. Each pose takes the same cell walk as
// Score — per-pose results are bit-identical by construction — while the
// batch amortizes the scorer's dispatch and keeps the receptor's cell
// neighbourhood hot in cache across consecutive poses of the same spot.
func (c *CellList) ScoreBatch(poses [][]vec.V3, out []float64) {
	checkBatch(poses, out)
	for i, pose := range poses {
		out[i] = c.Score(pose)
	}
}

// neighborRange returns the clamped [lo, hi] cell range around fractional
// cell coordinate f on an axis with n cells. An empty range (lo > hi) means
// the atom is beyond the cutoff of every cell on that axis.
func neighborRange(f float64, n int) (lo, hi int) {
	i := int(math.Floor(f))
	lo, hi = i-1, i+1
	if lo < 0 {
		lo = 0
	}
	if hi > n-1 {
		hi = n - 1
	}
	return lo, hi
}
