package forcefield

import (
	"math"
	"testing"

	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/vec"
)

// FuzzNeighborListGather checks the cell-binned neighbor-list gather against
// brute-force pair enumeration: for a fuzzed search region over a fuzzed
// receptor, the gathered atom set must equal exactly the set of atoms within
// Cutoff of the region — no atom missed (coverage), none repeated (no
// duplicates), none beyond the cutoff (correctness) — in ascending index
// order.
func FuzzNeighborListGather(f *testing.F) {
	f.Add(uint64(1), 0.0, 0.0, 0.0, 8.0, 6.0, 10.0)
	f.Add(uint64(7), 15.0, -10.0, 3.0, 0.5, 0.5, 0.5)      // tiny region
	f.Add(uint64(42), -80.0, 70.0, -60.0, 20.0, 1.0, 40.0) // mostly off-receptor
	f.Add(uint64(3), 0.0, 0.0, 0.0, 200.0, 200.0, 200.0)   // swallows the receptor
	f.Add(uint64(9), 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)         // degenerate point region
	f.Fuzz(func(t *testing.T, seed uint64, cx, cy, cz, hx, hy, hz float64) {
		for _, v := range []float64{cx, cy, cz, hx, hy, hz} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip("non-finite region")
			}
		}
		clamp := func(v, lim float64) float64 {
			return math.Min(math.Max(v, -lim), lim)
		}
		center := vec.New(clamp(cx, 200), clamp(cy, 200), clamp(cz, 200))
		half := vec.New(
			math.Min(math.Abs(hx), 100),
			math.Min(math.Abs(hy), 100),
			math.Min(math.Abs(hz), 100),
		)
		rec := NewTopology(molecule.SyntheticProtein("rec", 250, seed%1024+1))
		lig := NewTopology(molecule.SyntheticLigand("lig", 4, 2))
		cells := NewCellList(rec, lig, Options{})
		region := vec.NewAABB(center.Sub(half), center.Add(half))
		nl := NewNeighborList(cells, rec, region)

		const cutoff2 = Cutoff * Cutoff
		var want []int32
		for i, p := range rec.Pos {
			if region.Dist2ToPoint(p) <= cutoff2 {
				want = append(want, int32(i))
			}
		}
		got := nl.Indices()
		if len(got) != len(want) {
			t.Fatalf("gathered %d atoms, brute force %d (region %v)", len(got), len(want), region)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("index %d: gathered atom %d, brute force %d", i, got[i], want[i])
			}
			if i > 0 && got[i] <= got[i-1] {
				t.Fatalf("indices not strictly ascending at %d: %d after %d", i, got[i], got[i-1])
			}
		}
		if nl.Len() != len(want) {
			t.Fatalf("Len() = %d, want %d", nl.Len(), len(want))
		}
	})
}
