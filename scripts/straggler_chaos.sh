#!/usr/bin/env bash
# Straggler drill for distributed screening: a coordinator with straggler
# mitigation enabled, one worker that is both lagged (netsim latency on
# every coordinator->victim request) and genuinely stalled (a soak screen
# hogging its single worker slot), and two healthy workers. Verify that
#
#   - the stalled shard is stolen (shards_stolen_total >= 1),
#   - the victim lands in quarantine (visible in /debug/snapshot),
#   - the screen still finishes "done" with every ligand merged exactly
#     once (ligands_merged_total == library size).
#
# Run from the repo root: scripts/straggler_chaos.sh
set -euo pipefail

COORD_PORT="${COORD_PORT:-8491}"
VICTIM_PORT="${VICTIM_PORT:-8492}"
W1_PORT="${W1_PORT:-8493}"
W2_PORT="${W2_PORT:-8494}"
COORD="http://localhost:$COORD_PORT"
VICTIM="http://localhost:$VICTIM_PORT"
LIBRARY=18
WORK="$(mktemp -d)"
PIDS=()
trap 'for p in "${PIDS[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done; rm -rf "$WORK"' EXIT

go build -o "$WORK/vsserved" ./cmd/vsserved

wait_healthy() {
    for _ in $(seq 1 50); do
        if curl -fsS "$1/healthz" >/dev/null 2>&1; then return; fi
        sleep 0.2
    done
    echo "straggler_chaos: $1 did not come up; logs:" >&2
    cat "$WORK"/*.log >&2
    exit 1
}

"$WORK/vsserved" -addr ":$COORD_PORT" -role coordinator \
    -chaos "127.0.0.1:$VICTIM_PORT:latency@500ms±100ms" -chaos-seed 7 \
    -worker-timeout 2s -poll-interval 50ms -request-timeout 3s \
    -steal-threshold 2 -hedge-tail 1 -quarantine-factor 4 \
    >"$WORK/coord.log" 2>&1 &
PIDS+=($!)
wait_healthy "$COORD"

for port in "$VICTIM_PORT" "$W1_PORT" "$W2_PORT"; do
    "$WORK/vsserved" -addr ":$port" -role worker -coordinator "$COORD" \
        -heartbeat 200ms -workers 1 -screen-workers 1 \
        >"$WORK/worker-$port.log" 2>&1 &
    PIDS+=($!)
done
for port in "$VICTIM_PORT" "$W1_PORT" "$W2_PORT"; do
    wait_healthy "http://localhost:$port"
done

# All three workers registered and alive.
for _ in $(seq 1 50); do
    ALIVE="$(curl -fsS "$COORD/v1/workers" | grep -c '"alive": true' || true)"
    [ "$ALIVE" = 3 ] && break
    sleep 0.2
done
[ "$ALIVE" = 3 ] || { echo "straggler_chaos: only $ALIVE of 3 workers alive" >&2; exit 1; }
echo "straggler_chaos: cluster up (3 workers)"

# jsonfield FILE KEY extracts a string field from vsserved's indented JSON.
jsonfield() {
    sed -n "s/.*\"$2\": \"\([^\"]*\)\".*/\1/p" "$1" | head -1
}

# Stall the victim: one worker slot, so this soak serializes the
# coordinator's shard behind it at zero progress.
SOAK='{"dataset":"2BSM","library":60,"spots":2,"metaheuristic":"M3","scale":1.0,"seed":3}'
curl -fsS -X POST "$VICTIM/v1/screens" -d "$SOAK" >/dev/null
echo "straggler_chaos: victim soaked at $VICTIM"

REQ='{"dataset":"2BSM","library":'"$LIBRARY"',"spots":2,"metaheuristic":"M3","scale":0.3,"seed":7}'
curl -fsS -X POST "$COORD/v1/screens" -d "$REQ" >"$WORK/submit.json"
JOB="$(jsonfield "$WORK/submit.json" id)"
[ -n "$JOB" ] || { echo "straggler_chaos: no job id in submit response" >&2; exit 1; }
echo "straggler_chaos: submitted $JOB"

for _ in $(seq 1 600); do
    curl -fsS "$COORD/v1/screens/$JOB" >"$WORK/job.json"
    STATE="$(jsonfield "$WORK/job.json" state)"
    case "$STATE" in
    done) break ;;
    failed | cancelled)
        echo "straggler_chaos: $JOB ended as $STATE" >&2
        cat "$WORK/job.json" "$WORK/coord.log" >&2
        exit 1
        ;;
    esac
    sleep 0.2
done
[ "$STATE" = done ] || { echo "straggler_chaos: $JOB never finished" >&2; cat "$WORK/coord.log" >&2; exit 1; }
echo "straggler_chaos: $JOB done"

curl -fsS "$COORD/metrics" >"$WORK/metrics"
STOLEN="$(awk '$1 == "metascreen_dist_shards_stolen_total" {print $2}' "$WORK/metrics")"
MERGED="$(awk '$1 == "metascreen_dist_ligands_merged_total" {print $2}' "$WORK/metrics")"
if [ -z "$STOLEN" ] || [ "$STOLEN" -lt 1 ]; then
    echo "straggler_chaos: shards_stolen_total=$STOLEN, want >= 1" >&2
    cat "$WORK/coord.log" >&2
    exit 1
fi
if [ "$MERGED" != "$LIBRARY" ]; then
    echo "straggler_chaos: ligands_merged_total=$MERGED, want exactly $LIBRARY" >&2
    exit 1
fi
echo "straggler_chaos: $STOLEN shard(s) stolen, $MERGED/$LIBRARY ligands merged exactly once"

curl -fsS "$COORD/debug/snapshot" >"$WORK/snapshot.json"
if ! grep -q '"quarantined": true' "$WORK/snapshot.json"; then
    echo "straggler_chaos: no quarantined worker in /debug/snapshot" >&2
    cat "$WORK/snapshot.json" >&2
    exit 1
fi
echo "straggler_chaos: victim visible as quarantined in /debug/snapshot"
grep -E 'metascreen_dist_(shards_stolen|hedges_issued|hedge_wins|quarantines)_total|metascreen_dist_workers_quarantined' "$WORK/metrics"
