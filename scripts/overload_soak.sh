#!/usr/bin/env bash
# Overload soak drill for the screening service: start vsserved with a
# small queue, flood it with low-priority submissions from one client,
# and verify that
#
#   - rejected submissions get HTTP 429 with a Retry-After header and a
#     structured body (reason "queue_full"),
#   - a high-priority job from a different client finishes while the
#     flood backlog is still queued (weighted-fair scheduling),
#   - an unmeetable deadline_seconds is shed at admission,
#   - every accepted job still reaches a terminal state (no stuck jobs),
#   - the shed counters and admission gauges move on /metrics.
#
# Run from the repo root: scripts/overload_soak.sh
set -euo pipefail

PORT="${PORT:-8392}"
BASE="http://localhost:$PORT"
WORK="$(mktemp -d)"
PID=""
trap '[ -n "$PID" ] && kill -9 "$PID" 2>/dev/null; rm -rf "$WORK"' EXIT

go build -o "$WORK/vsserved" ./cmd/vsserved

"$WORK/vsserved" -addr ":$PORT" -workers 2 -screen-workers 1 -queue 16 \
    -breaker-threshold 2 -breaker-cooldown 2s >>"$WORK/log" 2>&1 &
PID=$!
for _ in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.2
done
curl -fsS "$BASE/healthz" >/dev/null || {
    echo "overload_soak: vsserved did not come up; log:" >&2
    cat "$WORK/log" >&2
    exit 1
}

# jsonfield FILE KEY extracts a string field from vsserved's indented JSON.
jsonfield() {
    sed -n "s/.*\"$2\": \"\([^\"]*\)\".*/\1/p" "$1" | head -1
}

# metric NAME greps one sample value off /metrics.
metric() {
    curl -fsS "$BASE/metrics" | sed -n "s/^$1 \(.*\)$/\1/p" | head -1
}

FLOOD='{"dataset":"2BSM","library":10,"spots":4,"metaheuristic":"M1","scale":0.2,"priority":"low","client_id":"flood"}'
STEADY='{"dataset":"2BSM","library":2,"spots":1,"metaheuristic":"M1","modeled":true,"seed":99,"priority":"high","client_id":"steady"}'

# Phase 1: flood. 120 concurrent low-priority submissions against a
# 16-deep queue; collect accepted ids and rejection codes.
echo "overload_soak: flooding 120 submissions into a 16-deep queue"
mkdir "$WORK/resp"
CURLS=()
for i in $(seq 1 120); do
    curl -sS -o "$WORK/resp/$i.json" -D "$WORK/resp/$i.hdr" -w '%{http_code}' \
        -X POST "$BASE/v1/screens" -d "$FLOOD" >"$WORK/resp/$i.code" &
    CURLS+=("$!")
done
wait "${CURLS[@]}"

ACCEPTED=0
REJECTED=0
: >"$WORK/jobs"
for i in $(seq 1 120); do
    CODE="$(cat "$WORK/resp/$i.code")"
    case "$CODE" in
    202)
        ACCEPTED=$((ACCEPTED + 1))
        jsonfield "$WORK/resp/$i.json" id >>"$WORK/jobs"
        ;;
    429)
        REJECTED=$((REJECTED + 1))
        grep -qi '^retry-after:' "$WORK/resp/$i.hdr" || {
            echo "overload_soak: 429 without Retry-After" >&2
            cat "$WORK/resp/$i.hdr" >&2
            exit 1
        }
        grep -q '"reason": "queue_full"' "$WORK/resp/$i.json" || {
            echo "overload_soak: 429 body missing reason queue_full" >&2
            cat "$WORK/resp/$i.json" >&2
            exit 1
        }
        ;;
    *)
        echo "overload_soak: unexpected submit status $CODE" >&2
        cat "$WORK/resp/$i.json" >&2
        exit 1
        ;;
    esac
done
echo "overload_soak: $ACCEPTED accepted, $REJECTED shed with 429 + Retry-After"
[ "$REJECTED" -gt 0 ] || { echo "overload_soak: flood never tripped queue_full" >&2; exit 1; }

# Phase 2: a high-priority job from another client must finish while the
# flood backlog is still draining. The first slot that frees up goes to
# the high class, but the submit itself can race queue_full — retry it.
SJOB=""
for _ in $(seq 1 200); do
    SCODE="$(curl -sS -o "$WORK/steady.json" -w '%{http_code}' -X POST "$BASE/v1/screens" -d "$STEADY")"
    if [ "$SCODE" = 202 ]; then
        SJOB="$(jsonfield "$WORK/steady.json" id)"
        break
    fi
    [ "$SCODE" = 429 ] || { echo "overload_soak: steady submit got $SCODE" >&2; exit 1; }
    sleep 0.1
done
[ -n "$SJOB" ] || { echo "overload_soak: steady job never admitted" >&2; exit 1; }
for _ in $(seq 1 300); do
    curl -fsS "$BASE/v1/screens/$SJOB" >"$WORK/sjob.json"
    STATE="$(jsonfield "$WORK/sjob.json" state)"
    [ "$STATE" = "done" ] && break
    case "$STATE" in failed | cancelled | shed)
        echo "overload_soak: steady job ended as $STATE" >&2
        exit 1
        ;;
    esac
    sleep 0.1
done
[ "$STATE" = "done" ] || { echo "overload_soak: steady job never finished" >&2; exit 1; }
DEPTH="$(metric metascreen_queue_depth)"
echo "overload_soak: high-priority steady job done with queue_depth=$DEPTH"

# Phase 3: an unmeetable deadline is shed at admission with 429.
DCODE="$(curl -sS -o "$WORK/deadline.json" -w '%{http_code}' -X POST "$BASE/v1/screens" \
    -d '{"dataset":"2BSM","library":4,"metaheuristic":"M1","deadline_seconds":0.001}')"
if [ "$DCODE" != 429 ] || ! grep -q '"reason": "deadline_admission"' "$WORK/deadline.json"; then
    echo "overload_soak: unmeetable deadline not shed at admission (status $DCODE)" >&2
    cat "$WORK/deadline.json" >&2
    exit 1
fi
echo "overload_soak: unmeetable deadline shed at admission"

# Phase 4: every accepted flood job reaches a terminal state.
while read -r JOB; do
    [ -n "$JOB" ] || continue
    for _ in $(seq 1 900); do
        STATE="$(curl -fsS "$BASE/v1/screens/$JOB" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p' | head -1)"
        case "$STATE" in done | failed | cancelled | shed) break ;; esac
        sleep 0.1
    done
    case "$STATE" in
    done | shed) ;;
    *)
        echo "overload_soak: flood job $JOB stuck in state $STATE" >&2
        exit 1
        ;;
    esac
done <"$WORK/jobs"
echo "overload_soak: all $ACCEPTED accepted flood jobs reached a terminal state"

# Phase 5: counters and gauges moved.
SHED="$(metric 'metascreen_jobs_shed_total{reason="queue_full"}')"
LIMIT="$(metric metascreen_admission_limit)"
DEPTH="$(metric metascreen_queue_depth)"
[ "${SHED:-0}" -gt 0 ] || { echo "overload_soak: jobs_shed_total{queue_full} never moved" >&2; exit 1; }
[ "${LIMIT:-0}" -ge 1 ] || { echo "overload_soak: admission_limit gauge missing" >&2; exit 1; }
[ "${DEPTH:-1}" -eq 0 ] || { echo "overload_soak: queue did not drain (depth $DEPTH)" >&2; exit 1; }
echo "overload_soak: shed=$SHED limit=$LIMIT depth=$DEPTH"
echo "overload_soak: PASS"
