#!/bin/sh
# Captures one smoke run of the paper-table benchmarks as JSON, starting
# the repo's perf-trajectory record (BENCH_<n>.json per PR). The tables
# replay the paper workloads through the modeled backends, so the
# interesting numbers are the simulated-seconds custom metrics, which are
# stable across machines; ns/op is kept for context only.
#
# Usage: scripts/bench_capture.sh [output.json]
set -eu
cd "$(dirname "$0")/.."
out=${1:-BENCH_4.json}
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench Table -benchtime=1x . | tee "$raw"

awk -v cmd="go test -run '^$' -bench Table -benchtime=1x ." '
BEGIN {
    print "{"
    printf "  \"command\": \"%s\",\n", cmd
    print "  \"benchmarks\": ["
    sep = ""
}
/^Benchmark/ {
    printf "%s    {\"name\": \"%s\", \"iterations\": %s, \"metrics\": {", sep, $1, $2
    sep = ",\n"
    msep = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        printf "%s\"%s\": %s", msep, $(i + 1), $i
        msep = ", "
    }
    printf "}}"
}
END {
    print ""
    print "  ]"
    print "}"
}' "$raw" > "$out"

echo "wrote $out"
