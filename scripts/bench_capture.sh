#!/bin/sh
# Captures one smoke run of the paper-table benchmarks as JSON, continuing
# the repo's perf-trajectory record (BENCH_<n>.json per PR). The tables
# replay the paper workloads through the modeled backends, so the
# interesting numbers are the simulated-seconds custom metrics, which are
# stable across machines; ns/op measures the host-side engine overhead the
# batched scoring path optimizes.
#
# Usage: scripts/bench_capture.sh [output.json] [baseline.json [max_regression_pct]]
#
# With a baseline, the script also compares ns/op per Table benchmark and
# exits non-zero if any case regressed by more than max_regression_pct
# (default 10). Speedups are reported either way, so the CI log shows the
# current trajectory against the committed baseline.
#
# BENCHTIME overrides -benchtime (default 1x); regression gates should use
# a few iterations to average out single-shot noise.
set -eu
cd "$(dirname "$0")/.."
out=${1:-BENCH.json}
baseline=${2:-}
maxpct=${3:-10}
benchtime=${BENCHTIME:-1x}
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench Table -benchtime="$benchtime" . | tee "$raw"

awk -v cmd="go test -run '^$' -bench Table -benchtime=$benchtime ." '
BEGIN {
    print "{"
    printf "  \"command\": \"%s\",\n", cmd
    print "  \"benchmarks\": ["
    sep = ""
}
/^Benchmark/ {
    printf "%s    {\"name\": \"%s\", \"iterations\": %s, \"metrics\": {", sep, $1, $2
    sep = ",\n"
    msep = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        printf "%s\"%s\": %s", msep, $(i + 1), $i
        msep = ", "
    }
    printf "}}"
}
END {
    print ""
    print "  ]"
    print "}"
}' "$raw" > "$out"

echo "wrote $out"

[ -n "$baseline" ] || exit 0
[ -f "$baseline" ] || { echo "baseline $baseline not found" >&2; exit 1; }

# Compare ns/op per benchmark name against the baseline capture. Both files
# are produced by the awk block above (one benchmark object per line), so a
# line-oriented extraction is reliable here.
awk -v maxpct="$maxpct" -v base="$baseline" -v cur="$out" '
function extract(file, dest,    line, name, ns) {
    while ((getline line < file) > 0) {
        if (line !~ /"name": "Benchmark/) continue
        name = line; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
        ns = line; sub(/.*"ns\/op": /, "", ns); sub(/[,}].*/, "", ns)
        if (name != "" && ns + 0 > 0) dest[name] = ns + 0
    }
    close(file)
}
BEGIN {
    extract(base, old)
    extract(cur, new)
    matched = 0
    failed = 0
    printf "%-60s %14s %14s %9s\n", "benchmark", "baseline ns/op", "current ns/op", "speedup"
    for (name in new) {
        if (!(name in old)) continue
        matched++
        printf "%-60s %14.0f %14.0f %8.2fx", name, old[name], new[name], old[name] / new[name]
        if (new[name] > old[name] * (1 + maxpct / 100)) {
            printf "  REGRESSION >%s%%", maxpct
            failed++
        }
        print ""
    }
    if (matched == 0) {
        print "no common benchmarks between " cur " and " base > "/dev/stderr"
        exit 1
    }
    if (failed > 0) {
        print failed " benchmark(s) regressed more than " maxpct "% vs " base > "/dev/stderr"
        exit 1
    }
    print matched " benchmark(s) within " maxpct "% of " base
}'
