#!/usr/bin/env bash
# Disk-fault soak drill for the durable screening service, the storage
# twin of chaos_restart.sh (clean kills) and overload_soak.sh (client
# pressure). Two legs:
#
#   1. torn-write + EIO chaos on journal and checkpoint I/O (-disk-chaos,
#      deterministic under -disk-chaos-seed), then kill -9 mid-screen and
#      a restart over the same data dir with a healthy disk: every job
#      acknowledged with a 202 must still exist and reach "done".
#   2. a filling disk (enospc): submissions must degrade to 507 +
#      Retry-After while rankings and /metrics stay served and the
#      metascreen_storage_degraded gauge reads 1; a restart with a
#      healthy disk must know every acknowledged job.
#
# Run from the repo root: scripts/disk_chaos.sh
set -euo pipefail

PORT="${PORT:-8395}"
BASE="http://localhost:$PORT"
WORK="$(mktemp -d)"
PID=""
trap '[ -n "$PID" ] && kill -9 "$PID" 2>/dev/null; rm -rf "$WORK"' EXIT

go build -o "$WORK/vsserved" ./cmd/vsserved

# start DATA_DIR [extra flags...]
start() {
    local data="$1"
    shift
    "$WORK/vsserved" -addr ":$PORT" -workers 1 -screen-workers 1 \
        -data-dir "$data" -checkpoint-every 1 "$@" >>"$WORK/log" 2>&1 &
    PID=$!
    for _ in $(seq 1 50); do
        if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return; fi
        sleep 0.2
    done
    echo "disk_chaos: vsserved did not come up; log:" >&2
    cat "$WORK/log" >&2
    exit 1
}

stop() {
    kill -9 "$PID" 2>/dev/null || true
    wait "$PID" 2>/dev/null || true
    PID=""
}

jsonfield() {
    sed -n "s/.*\"$2\": \"\([^\"]*\)\".*/\1/p" "$1" | head -1
}

# wait_done JOB_ID: poll until the job is done (or fail the drill).
wait_done() {
    local job="$1"
    for _ in $(seq 1 600); do
        curl -fsS "$BASE/v1/screens/$job" >"$WORK/job.json"
        case "$(jsonfield "$WORK/job.json" state)" in
        done) return 0 ;;
        failed | cancelled | shed)
            echo "disk_chaos: $job ended as $(jsonfield "$WORK/job.json" state)" >&2
            cat "$WORK/job.json" >&2
            exit 1
            ;;
        esac
        sleep 0.2
    done
    echo "disk_chaos: $job never finished; log:" >&2
    cat "$WORK/log" >&2
    exit 1
}

REQ='{"dataset":"2BSM","library":64,"spots":2,"metaheuristic":"M3","scale":0.05,"seed":7}'
# Leg 1 screens a larger library so the kill -9 lands mid-run and the
# restart genuinely resumes an interrupted job.
LONGREQ='{"dataset":"2BSM","library":400,"spots":2,"metaheuristic":"M3","scale":0.05,"seed":7}'

# ---- Leg 1: torn writes + EIO on checkpoint I/O, kill -9, recover ----

DATA1="$WORK/data1"
start "$DATA1" -disk-chaos '*.tmp:torn-write@0.4,*.tmp:eio@0.3' -disk-chaos-seed 7
echo "disk_chaos: leg 1 up (torn-write + eio on checkpoint writes)"

curl -fsS -X POST "$BASE/v1/screens" -H 'Idempotency-Key: disk-1' -d "$LONGREQ" >"$WORK/submit.json"
JOB="$(jsonfield "$WORK/submit.json" id)"
[ -n "$JOB" ] || { echo "disk_chaos: no job id in submit response" >&2; exit 1; }
echo "disk_chaos: submitted $JOB under disk chaos"

# Let it run (and eat checkpoint faults), then pull the power.
sleep 1
stop
echo "disk_chaos: killed vsserved mid-screen"

start "$DATA1"
echo "disk_chaos: restarted over $DATA1 with a healthy disk"
wait_done "$JOB"
echo "disk_chaos: $JOB recovered to done after torn-write/eio chaos + kill -9"
curl -fsS "$BASE/metrics" | grep -E 'metascreen_(replayed_records|recovered_jobs|checkpoint_errors|checkpoints_quarantined)_total' || true
stop

# ---- Leg 2: disk fills; degrade to read-only, never fall over ----

DATA2="$WORK/data2"
start "$DATA2" -disk-chaos '*:enospc@65536' -disk-chaos-seed 7
echo "disk_chaos: leg 2 up (disk fills after 64 KiB)"

ACKED=""
FULL=0
for i in $(seq 1 100); do
    CODE="$(curl -s -o "$WORK/resp.json" -w '%{http_code}' -D "$WORK/headers" \
        -X POST "$BASE/v1/screens" -H "Idempotency-Key: fill-$i" -d "$REQ")"
    if [ "$CODE" = "202" ]; then
        ID="$(jsonfield "$WORK/resp.json" id)"
        ACKED="$ACKED $ID"
        wait_done "$ID"
    elif [ "$CODE" = "507" ]; then
        FULL=1
        grep -qi '^retry-after:' "$WORK/headers" || {
            echo "disk_chaos: 507 without Retry-After" >&2
            exit 1
        }
        break
    else
        echo "disk_chaos: submit $i got unexpected status $CODE" >&2
        cat "$WORK/resp.json" >&2
        exit 1
    fi
done
[ "$FULL" = "1" ] || { echo "disk_chaos: disk never filled (no 507 in 100 submits)" >&2; exit 1; }
[ -n "$ACKED" ] || { echo "disk_chaos: no job acknowledged before the disk filled" >&2; exit 1; }
echo "disk_chaos: disk full after $(echo "$ACKED" | wc -w) jobs; 507 + Retry-After confirmed"

# Degraded is read-only, not down: rankings and metrics must still flow.
for ID in $ACKED; do
    curl -fsS "$BASE/v1/screens/$ID" >/dev/null
done
curl -fsS "$BASE/metrics" >"$WORK/metrics"
grep -q '^metascreen_storage_degraded 1$' "$WORK/metrics" || {
    echo "disk_chaos: metrics do not report storage_degraded 1; got:" >&2
    grep storage "$WORK/metrics" >&2 || true
    exit 1
}
echo "disk_chaos: reads + metrics served while degraded"
stop

# A restart with a healthy disk must know every acknowledged job.
start "$DATA2"
for ID in $ACKED; do
    curl -fsS "$BASE/v1/screens/$ID" >/dev/null || {
        echo "disk_chaos: acknowledged job $ID lost across restart" >&2
        exit 1
    }
done
echo "disk_chaos: all acknowledged jobs survived the restart"
stop
echo "disk_chaos: PASS"
