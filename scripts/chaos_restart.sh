#!/usr/bin/env bash
# Kill-and-restart drill for the durable screening service: start vsserved
# with a data dir, submit a long screen with an idempotency key, SIGKILL
# the process mid-run, restart it over the same data dir, and verify that
#
#   - the interrupted job is recovered and resumes from its checkpoint,
#   - resubmitting the same Idempotency-Key maps onto the original job,
#   - the job still reaches state "done".
#
# Run from the repo root: scripts/chaos_restart.sh
set -euo pipefail

PORT="${PORT:-8391}"
BASE="http://localhost:$PORT"
WORK="$(mktemp -d)"
DATA="$WORK/data"
PID=""
trap '[ -n "$PID" ] && kill -9 "$PID" 2>/dev/null; rm -rf "$WORK"' EXIT

go build -o "$WORK/vsserved" ./cmd/vsserved

start() {
    "$WORK/vsserved" -addr ":$PORT" -workers 1 -screen-workers 1 \
        -data-dir "$DATA" -checkpoint-every 1 >>"$WORK/log" 2>&1 &
    PID=$!
    for _ in $(seq 1 50); do
        if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return; fi
        sleep 0.2
    done
    echo "chaos_restart: vsserved did not come up; log:" >&2
    cat "$WORK/log" >&2
    exit 1
}

# jsonfield FILE KEY extracts a string field from vsserved's indented JSON.
jsonfield() {
    sed -n "s/.*\"$2\": \"\([^\"]*\)\".*/\1/p" "$1" | head -1
}

REQ='{"dataset":"2BSM","library":400,"spots":2,"metaheuristic":"M3","scale":0.05,"seed":7}'

start
curl -fsS -X POST "$BASE/v1/screens" -H 'Idempotency-Key: chaos-1' -d "$REQ" >"$WORK/submit.json"
JOB="$(jsonfield "$WORK/submit.json" id)"
[ -n "$JOB" ] || { echo "chaos_restart: no job id in submit response" >&2; exit 1; }
echo "chaos_restart: submitted $JOB"

# Give the screen time to checkpoint some ligands, then kill -9: no drain,
# no final fsync beyond the per-record policy.
sleep 1
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""
echo "chaos_restart: killed vsserved mid-screen"

start
echo "chaos_restart: restarted over $DATA"

# The duplicate submission must return the original job, not a new one.
curl -fsS -X POST "$BASE/v1/screens" -H 'Idempotency-Key: chaos-1' -d "$REQ" >"$WORK/dup.json"
DUP="$(jsonfield "$WORK/dup.json" id)"
if [ "$DUP" != "$JOB" ]; then
    echo "chaos_restart: duplicate key created $DUP, want $JOB" >&2
    exit 1
fi
echo "chaos_restart: idempotent resubmission returned $JOB"

for _ in $(seq 1 600); do
    curl -fsS "$BASE/v1/screens/$JOB" >"$WORK/job.json"
    STATE="$(jsonfield "$WORK/job.json" state)"
    case "$STATE" in
    done)
        echo "chaos_restart: $JOB done after restart"
        curl -fsS "$BASE/metrics" | grep -E 'metascreen_(replayed_records|recovered_jobs|checkpoints_written)_total'
        exit 0
        ;;
    failed | cancelled)
        echo "chaos_restart: $JOB ended as $STATE" >&2
        cat "$WORK/job.json" >&2
        exit 1
        ;;
    esac
    sleep 0.2
done
echo "chaos_restart: $JOB never finished; log:" >&2
cat "$WORK/log" >&2
exit 1
