// Command devinfo prints the simulated GPU catalogue in the style of the
// paper's Tables 1-3: per-model architecture, SM geometry, clocks, memory
// and compute capability, plus the modeled docking-kernel throughput.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"github.com/metascreen/metascreen/internal/cudasim"
	"github.com/metascreen/metascreen/internal/tables"
)

func main() {
	machine := flag.String("machine", "", "print one platform's node (Jupiter or Hertz) instead of the catalogue")
	flag.Parse()

	model := cudasim.DefaultCostModel()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer w.Flush()

	if *machine != "" {
		m, err := tables.MachineByName(*machine)
		if err != nil {
			fmt.Fprintln(os.Stderr, "devinfo:", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "%s: %d CPU cores @ %.0f MHz (modeled %.2f Gpairs/s)\n",
			m.Name, m.CPUCores, m.CPUClockMHz,
			model.CPURate(m.CPUCores, m.CPUClockMHz)/1e9)
		printHeader(w)
		for i, g := range m.GPUs {
			printSpec(w, fmt.Sprintf("gpu%d", i), g, model)
		}
		return
	}

	fmt.Fprintln(w, "Simulated GPU catalogue (parameters from the paper's Tables 1-3)")
	printHeader(w)
	for _, s := range cudasim.Catalogue() {
		printSpec(w, "", s, model)
	}
}

func printHeader(w *tabwriter.Writer) {
	fmt.Fprintln(w, "\tname\tarch\tyear\tSMs\tcores/SM\tcores\tMHz\tshared KB\tmem MB\tGB/s\tCCC\tTDP W\tscore Gpairs/s\timprove Gpairs/s\toccupancy")
}

func printSpec(w *tabwriter.Writer, tag string, s cudasim.DeviceSpec, model cudasim.CostModel) {
	occStr := "n/a"
	if occ, err := cudasim.ComputeOccupancy(s, cudasim.DockingKernelResources()); err == nil {
		occStr = fmt.Sprintf("%.0f%% (%s)", 100*occ.Fraction, occ.Limiter)
	}
	fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%d\t%d\t%d\t%.0f\t%d\t%d\t%.1f\t%s\t%.0f\t%.2f\t%.2f\t%s\n",
		tag, s.Name, s.Arch, s.Year, s.SMs, s.CoresPerSM, s.Cores(), s.ClockMHz,
		s.SharedMemKB, s.GlobalMemMB, s.MemBandwidthGBs, s.CCC, s.TDPWatts(),
		model.PairRate(s, cudasim.KernelScoring)/1e9,
		model.PairRate(s, cudasim.KernelImprove)/1e9,
		occStr)
}
