// Command spotfind detects the surface spots of a receptor — the
// independent docking regions of the BINDSURF strategy — and prints them
// with exposure and geometry information.
//
// Usage:
//
//	spotfind -dataset 2BXG
//	spotfind -pdb receptor.pdb -spots 20
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/surface"
)

func main() {
	dataset := flag.String("dataset", "", "benchmark dataset (2BSM or 2BXG)")
	pdbPath := flag.String("pdb", "", "receptor PDB file (alternative to -dataset)")
	spots := flag.Int("spots", 0, "number of spots (0 = receptorAtoms/100)")
	sep := flag.Float64("sep", 0, "minimum spot separation in angstroms (0 = default 6)")
	out := flag.String("out", "", "write the spots as a PDB of marker pseudo-atoms (view alongside the receptor)")
	flag.Parse()

	var rec *molecule.Molecule
	switch {
	case *dataset != "":
		ds, err := core.DatasetByName(*dataset)
		if err != nil {
			fatal(err)
		}
		rec = ds.Receptor
	case *pdbPath != "":
		f, err := os.Open(*pdbPath)
		if err != nil {
			fatal(err)
		}
		var rerr error
		rec, rerr = molecule.ReadPDB(f)
		f.Close()
		if rerr != nil {
			fatal(rerr)
		}
	default:
		fatal(fmt.Errorf("need -dataset or -pdb"))
	}

	found, err := surface.FindSpots(rec, surface.Options{
		MaxSpots:      *spots,
		MinSeparation: *sep,
	})
	if err != nil {
		fatal(err)
	}

	b := rec.Bounds()
	fmt.Printf("%s: %d atoms, bounds %.1f x %.1f x %.1f A, %d spots\n",
		rec.Name, rec.NumAtoms(), b.Size().X, b.Size().Y, b.Size().Z, len(found))
	fmt.Println("  id  anchor-atom  exposure  center                          normal")
	for _, s := range found {
		fmt.Printf("  %2d  %11d  %8.3f  %-30v  %v\n",
			s.ID, s.AtomIndex, s.Exposure, s.Center, s.Normal)
	}

	if *out != "" {
		markers := make([]molecule.Atom, 0, len(found))
		for _, s := range found {
			markers = append(markers, molecule.Atom{
				Name:    "SPT",
				Element: molecule.Phosphorus, // visually distinct marker
				Pos:     s.Center,
				Residue: s.ID + 1,
			})
		}
		m := molecule.New(rec.Name+"-spots", markers)
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		werr := molecule.WritePDB(f, m)
		cerr := f.Close()
		if werr != nil {
			fatal(werr)
		}
		if cerr != nil {
			fatal(cerr)
		}
		fmt.Printf("spot markers written to %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spotfind:", err)
	os.Exit(1)
}
