// Command vsserved runs metascreen as a screening service: an HTTP JSON
// API over a bounded job queue and a parallel worker pool, with
// Prometheus metrics, structured logs and per-job execution traces — the
// paper's virtual-screening funnel as a server.
//
// Usage:
//
//	vsserved -addr :8080 -workers 4 -queue 64
//
// Submit a screen, poll it, read the ranking, download its timeline:
//
//	curl -s -X POST localhost:8080/v1/screens \
//	    -d '{"dataset":"2BSM","library":8,"metaheuristic":"M3","seed":7}'
//	curl -s localhost:8080/v1/screens/job-000001
//	curl -s localhost:8080/v1/screens/job-000001/trace > job.trace.json
//	curl -s localhost:8080/metrics
//
// The trace payload is Chrome trace format; load it in Perfetto
// (ui.perfetto.dev) or chrome://tracing. With -debug-addr set, a second
// listener serves /debug/pprof/, /debug/vars and /debug/snapshot.
//
// Overload protection is built in: an adaptive concurrency limiter
// (-target-latency, -limiter-min/-limiter-max), a weighted-fair priority
// queue (requests carry "priority" and a client ID), deadline-aware
// shedding ("deadline_seconds" requests are rejected with 429 +
// Retry-After when unmeetable), a device-health circuit breaker
// (-breaker-threshold, -breaker-cooldown) and graceful degradation
// (-degrade-at, -degrade-factor).
//
// Scale-out runs the same binary in three roles (-role):
//
//	node         the default single-node service above
//	worker       a node that also registers with and heartbeats to a
//	             coordinator (-coordinator, -advertise, -heartbeat)
//	coordinator  no local screening: shards each submitted screen across
//	             the registered workers by ligand-name hash, streams the
//	             partial rankings back and merges them deterministically;
//	             worker death re-splits unfinished ligands over the
//	             survivors, and -data-dir journals distributed state so a
//	             restarted coordinator resumes mid-screen
//
// Coordinator→worker requests run under per-request timeouts with
// bounded, jittered retries and epoch fencing against zombie workers
// (-request-timeout, -worker-attempts, -worker-retry-delay,
// -worker-fail-threshold, -worker-response-limit). Slowness is treated
// as a fault too: the coordinator steals straggling shards onto idle
// workers, hedge-dispatches the tail of each screen, and quarantines
// persistently slow workers (-steal-threshold, -hedge-tail,
// -quarantine-factor). A -chaos plan (with
// -chaos-seed) injects deterministic network faults — partitions,
// blackholes, latency, request duplication — into those requests for
// replayable chaos drills; see internal/netsim.
//
// Storage faults get the same treatment: a -disk-chaos plan (with
// -disk-chaos-seed) injects deterministic disk faults — EIO, ENOSPC,
// fsync failures, torn writes, bit rot — into journal and checkpoint
// I/O; see internal/fsim. When the disk fills or fail-stops, the node
// degrades to read-only (submissions get 507 + Retry-After) and
// recovers in place once space frees; -on-full stop drains and exits
// non-zero instead, for supervised deployments that prefer rescheduling.
//
// SIGINT/SIGTERM drain gracefully: intake stops, queued jobs are
// cancelled, running jobs finish (up to -drain-timeout, then they are
// force-cancelled between metaheuristic generations).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/metascreen/metascreen/internal/admission"
	"github.com/metascreen/metascreen/internal/dist"
	"github.com/metascreen/metascreen/internal/fsim"
	"github.com/metascreen/metascreen/internal/netsim"
	"github.com/metascreen/metascreen/internal/obs"
	"github.com/metascreen/metascreen/internal/service"
	"github.com/metascreen/metascreen/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	debugAddr := flag.String("debug-addr", "", "debug listen address for pprof + snapshots (empty = disabled)")
	workers := flag.Int("workers", 0, "concurrent screening workers (0 = all CPUs)")
	queue := flag.Int("queue", 64, "queue bound; submissions beyond it get HTTP 429")
	screenWorkers := flag.Int("screen-workers", 0, "per-job ligand parallelism (0 = all CPUs)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for running jobs")
	maxAttempts := flag.Int("max-attempts", 0, "executions per job with transient failures (0 = 3, 1 disables retries)")
	retryDelay := flag.Duration("retry-delay", 0, "base backoff before the first retry, doubled per retry (0 = 100ms)")
	dataDir := flag.String("data-dir", "", "durability directory (journal + checkpoints); empty = in-memory only")
	fsync := flag.String("fsync", "always", "journal fsync policy: always, interval or never")
	fsyncInterval := flag.Duration("fsync-interval", 0, "sync cadence for -fsync interval (0 = 100ms)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "snapshot a running job's checkpoint every N completed ligands (0 = 1)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	targetLatency := flag.Duration("target-latency", 0, "attempt latency the adaptive concurrency limiter steers toward (0 = disabled)")
	limiterMin := flag.Int("limiter-min", 0, "adaptive concurrency floor (0 = 1)")
	limiterMax := flag.Int("limiter-max", 0, "adaptive concurrency ceiling (0 = worker count)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive all-device losses before the circuit opens (0 = 3)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "how long the open circuit rejects machine jobs before probing (0 = 5s)")
	degradeAt := flag.Float64("degrade-at", 0, "queue fill fraction above which jobs run with reduced effort (0 = 0.75)")
	degradeFactor := flag.Float64("degrade-factor", 0, "search-scale multiplier applied to degraded jobs (0 = 0.5)")
	role := flag.String("role", "node", "process role: node, worker or coordinator")
	coordinator := flag.String("coordinator", "", "coordinator base URL a worker registers with (worker role)")
	advertise := flag.String("advertise", "", "URL the coordinator should reach this worker at (default derived from -addr)")
	heartbeat := flag.Duration("heartbeat", time.Second, "worker registration/heartbeat cadence")
	workerTimeout := flag.Duration("worker-timeout", 5*time.Second, "coordinator declares a worker dead after this heartbeat silence")
	pollInterval := flag.Duration("poll-interval", 100*time.Millisecond, "coordinator shard dispatch/merge cadence")
	requestTimeout := flag.Duration("request-timeout", 0, "coordinator per-request deadline against a worker (0 = 15s)")
	workerAttempts := flag.Int("worker-attempts", 0, "tries per coordinator->worker request (0 = 3, 1 disables retries)")
	workerRetryDelay := flag.Duration("worker-retry-delay", 0, "base backoff between coordinator request retries, doubled and jittered (0 = 50ms)")
	workerFailThreshold := flag.Int("worker-fail-threshold", 0, "consecutive failed requests before a worker is declared dead (0 = 2)")
	workerResponseLimit := flag.Int64("worker-response-limit", 0, "byte cap on worker responses (0 = sized to the library limit)")
	stealThreshold := flag.Float64("steal-threshold", 0, "steal a shard when its ETA exceeds this multiple of the median (0 = 3, negative disables)")
	hedgeTail := flag.Int("hedge-tail", 0, "hedge-dispatch duplicates for the last N unfinished shards of a screen (0 = disabled)")
	quarantineFactor := flag.Float64("quarantine-factor", 0, "quarantine workers slower than the median by this factor and shrink their split weight by it (0 = 4, negative disables)")
	chaos := flag.String("chaos", "", "netsim fault plan injected into coordinator->worker requests, e.g. '127.0.0.1:8081:partition@3s+4s' (empty = disabled)")
	chaosSeed := flag.Uint64("chaos-seed", 1, "seed for the -chaos plan's probabilistic faults")
	diskChaos := flag.String("disk-chaos", "", "fsim fault plan injected into journal/checkpoint I/O, e.g. '*.wal:fsync-fail@0.01,*:enospc@1048576' (empty = disabled)")
	diskChaosSeed := flag.Uint64("disk-chaos-seed", 1, "seed for the -disk-chaos plan's probabilistic faults")
	onFull := flag.String("on-full", "degrade", "reaction to a full or failing disk: degrade (serve reads, 507 writes) or stop (drain and exit)")
	flag.Parse()

	logger, err := obs.NewLogger(*logLevel, *logFormat, os.Stderr)
	if err != nil {
		fatal(err)
	}
	policy, err := wal.ParseSyncPolicy(*fsync)
	if err != nil {
		fatal(err)
	}
	if *onFull != "degrade" && *onFull != "stop" {
		fatal(fmt.Errorf("unknown -on-full %q (want degrade or stop)", *onFull))
	}
	var diskFS fsim.FS
	if *diskChaos != "" {
		plan, perr := fsim.ParsePlan(*diskChaos)
		if perr != nil {
			fatal(perr)
		}
		diskFS = fsim.New(plan, fsim.Config{
			Seed: *diskChaosSeed,
			Logf: func(format string, args ...any) {
				logger.Warn(fmt.Sprintf(format, args...))
			},
		})
		logger.Warn("disk chaos plan active on durability I/O", "plan", plan.String(), "seed", *diskChaosSeed)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The coordinator role runs no local screening engine: it is the
	// dist.Coordinator behind the same API surface.
	if *role == "coordinator" {
		var transport http.RoundTripper
		if *chaos != "" {
			plan, perr := netsim.ParsePlan(*chaos)
			if perr != nil {
				fatal(perr)
			}
			transport = netsim.New(plan, netsim.Config{
				Seed: *chaosSeed,
				Logf: func(format string, args ...any) {
					logger.Warn(fmt.Sprintf(format, args...))
				},
			})
			logger.Warn("chaos plan active on worker requests", "plan", plan.String(), "seed", *chaosSeed)
		}
		coord, err := dist.New(dist.Config{
			DataDir:          *dataDir,
			FS:               diskFS,
			SyncPolicy:       policy,
			HeartbeatTimeout: *workerTimeout,
			PollInterval:     *pollInterval,
			RequestTimeout:   *requestTimeout,
			RequestAttempts:  *workerAttempts,
			RetryBaseDelay:   *workerRetryDelay,
			FailThreshold:    *workerFailThreshold,
			MaxResponseBytes: *workerResponseLimit,
			StealThreshold:   *stealThreshold,
			HedgeTail:        *hedgeTail,
			QuarantineFactor: *quarantineFactor,
			Transport:        transport,
			Logger:           logger,
		})
		if err != nil {
			fatal(err)
		}
		server := &http.Server{Addr: *addr, Handler: coord.Handler()}
		errCh := make(chan error, 1)
		go func() { errCh <- server.ListenAndServe() }()
		logger.Info("coordinator listening", "addr", *addr)
		select {
		case <-ctx.Done():
			logger.Info("draining")
		case err := <-errCh:
			fatal(err)
		}
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := server.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			logger.Error("http shutdown failed", "err", err)
		}
		if err := coord.Shutdown(drainCtx); err != nil {
			logger.Error("coordinator drain deadline exceeded", "err", err)
			os.Exit(1)
		}
		logger.Info("drained cleanly")
		return
	}
	if *role != "node" && *role != "worker" {
		fatal(fmt.Errorf("unknown -role %q (want node, worker or coordinator)", *role))
	}
	if *role == "worker" && *coordinator == "" {
		fatal(errors.New("-role worker requires -coordinator"))
	}

	svc, err := service.New(service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		ScreenWorkers:   *screenWorkers,
		MaxAttempts:     *maxAttempts,
		RetryBaseDelay:  *retryDelay,
		DataDir:         *dataDir,
		FS:              diskFS,
		Fsync:           policy,
		FsyncInterval:   *fsyncInterval,
		CheckpointEvery: *checkpointEvery,
		Logger:          logger,
		Admission: admission.Config{
			TargetLatency:    *targetLatency,
			LimiterMin:       *limiterMin,
			LimiterMax:       *limiterMax,
			BreakerThreshold: *breakerThreshold,
			BreakerCooldown:  *breakerCooldown,
			DegradeAt:        *degradeAt,
			DegradeFactor:    *degradeFactor,
		},
	})
	if err != nil {
		fatal(err)
	}
	if rec := svc.Recovery(); rec.ReplayedRecords > 0 || rec.RecoveredJobs > 0 {
		logger.Info("recovered jobs from journal",
			"jobs", rec.RecoveredJobs, "records", rec.ReplayedRecords)
	}
	server := &http.Server{Addr: *addr, Handler: svc.Handler()}

	var debugServer *http.Server
	if *debugAddr != "" {
		debugServer = &http.Server{Addr: *debugAddr, Handler: svc.DebugHandler()}
		go func() {
			if err := debugServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err)
			}
		}()
		logger.Info("debug listener up", "addr", *debugAddr)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "role", *role)

	if *role == "worker" {
		adv := *advertise
		if adv == "" {
			adv, err = advertiseFromAddr(*addr)
			if err != nil {
				fatal(err)
			}
		}
		go dist.RegisterLoop(ctx, *coordinator, adv, *heartbeat, func(format string, args ...any) {
			logger.Warn(fmt.Sprintf(format, args...))
		})
		logger.Info("registering with coordinator", "coordinator", *coordinator, "advertise", adv)
	}

	// -on-full stop turns storage degradation into a drain: operators who
	// prefer a crashed node over a read-only one (e.g. under an external
	// supervisor that reschedules elsewhere) get a clean exit instead of
	// serving 507s indefinitely. The default keeps serving reads.
	storageFull := make(chan struct{})
	if *onFull == "stop" {
		go func() {
			<-svc.StorageFull()
			logger.Error("storage degraded and -on-full=stop, draining")
			close(storageFull)
		}()
	}

	stoppedOnFull := false
	select {
	case <-ctx.Done():
		logger.Info("draining")
	case <-storageFull:
		stoppedOnFull = true
	case err := <-errCh:
		fatal(err)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop taking connections first, then drain the job pool.
	if err := server.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("http shutdown failed", "err", err)
	}
	if debugServer != nil {
		debugServer.Close()
	}
	if err := svc.Shutdown(drainCtx); err != nil {
		logger.Error("drain deadline exceeded, running jobs force-cancelled", "err", err)
		os.Exit(1)
	}
	if stoppedOnFull {
		// Non-zero so a restart=on-failure supervisor reschedules the node.
		logger.Info("drained after storage failure")
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}

// advertiseFromAddr derives a worker's advertised URL from its listen
// address: ":8081" becomes "http://127.0.0.1:8081" (single-host default;
// multi-host deployments pass -advertise explicitly).
func advertiseFromAddr(addr string) (string, error) {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "", fmt.Errorf("cannot derive -advertise from -addr %q: %w", addr, err)
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vsserved:", err)
	os.Exit(1)
}
