// Command vsserved runs metascreen as a screening service: an HTTP JSON
// API over a bounded job queue and a parallel worker pool, with
// Prometheus metrics — the paper's virtual-screening funnel as a server.
//
// Usage:
//
//	vsserved -addr :8080 -workers 4 -queue 64
//
// Submit a screen, poll it, read the ranking:
//
//	curl -s -X POST localhost:8080/v1/screens \
//	    -d '{"dataset":"2BSM","library":8,"metaheuristic":"M3","seed":7}'
//	curl -s localhost:8080/v1/screens/job-000001
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM drain gracefully: intake stops, queued jobs are
// cancelled, running jobs finish (up to -drain-timeout, then they are
// force-cancelled between metaheuristic generations).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/metascreen/metascreen/internal/service"
	"github.com/metascreen/metascreen/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent screening workers (0 = all CPUs)")
	queue := flag.Int("queue", 64, "queue bound; submissions beyond it get HTTP 429")
	screenWorkers := flag.Int("screen-workers", 0, "per-job ligand parallelism (0 = all CPUs)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for running jobs")
	maxAttempts := flag.Int("max-attempts", 0, "executions per job with transient failures (0 = 3, 1 disables retries)")
	retryDelay := flag.Duration("retry-delay", 0, "base backoff before the first retry, doubled per retry (0 = 100ms)")
	dataDir := flag.String("data-dir", "", "durability directory (journal + checkpoints); empty = in-memory only")
	fsync := flag.String("fsync", "always", "journal fsync policy: always, interval or never")
	fsyncInterval := flag.Duration("fsync-interval", 0, "sync cadence for -fsync interval (0 = 100ms)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "snapshot a running job's checkpoint every N completed ligands (0 = 1)")
	flag.Parse()

	policy, err := wal.ParseSyncPolicy(*fsync)
	if err != nil {
		fatal(err)
	}
	svc, err := service.New(service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		ScreenWorkers:   *screenWorkers,
		MaxAttempts:     *maxAttempts,
		RetryBaseDelay:  *retryDelay,
		DataDir:         *dataDir,
		Fsync:           policy,
		FsyncInterval:   *fsyncInterval,
		CheckpointEvery: *checkpointEvery,
	})
	if err != nil {
		fatal(err)
	}
	if rec := svc.Recovery(); rec.ReplayedRecords > 0 || rec.RecoveredJobs > 0 {
		fmt.Printf("vsserved: recovered %d job(s) from %d journal record(s)\n",
			rec.RecoveredJobs, rec.ReplayedRecords)
	}
	server := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	fmt.Printf("vsserved listening on %s\n", *addr)

	select {
	case <-ctx.Done():
		fmt.Println("vsserved: draining...")
	case err := <-errCh:
		fatal(err)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop taking connections first, then drain the job pool.
	if err := server.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "vsserved: http shutdown: %v\n", err)
	}
	if err := svc.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "vsserved: drain deadline exceeded, running jobs force-cancelled: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("vsserved: drained cleanly")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vsserved:", err)
	os.Exit(1)
}
