// Command vstune runs the metaheuristic parameter-tuning process the
// paper's introduction describes: a configuration space is searched by
// exhaustive grid search or by racing (configurations are eliminated as
// soon as they fall measurably behind), with each configuration scored by
// real screening runs.
//
// Usage:
//
//	vstune                             # race the default space on 2BSM
//	vstune -method grid -reps 8
//	vstune -mh ga -dataset 2BXG -spots 4
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/surface"
	"github.com/metascreen/metascreen/internal/tuning"
)

func main() {
	dataset := flag.String("dataset", "2BSM", "benchmark dataset (2BSM or 2BXG)")
	spots := flag.Int("spots", 3, "surface spots (small: every configuration runs many times)")
	mh := flag.String("mh", "ss", "metaheuristic family to tune: ga or ss")
	method := flag.String("method", "race", "tuning method: grid or race")
	reps := flag.Int("reps", 6, "replications (grid) / max rounds (race)")
	seed := flag.Uint64("seed", 1, "base random seed")
	flag.Parse()

	ds, err := core.DatasetByName(*dataset)
	if err != nil {
		fatal(err)
	}
	problem, err := core.NewProblem(ds.Receptor, ds.Ligand,
		surface.Options{MaxSpots: *spots}, forcefield.Options{})
	if err != nil {
		fatal(err)
	}

	base := metaheuristic.Params{
		PopulationPerSpot: 16,
		SelectFraction:    1,
		Generations:       6,
	}
	var factory tuning.AlgorithmFactory
	switch *mh {
	case "ga":
		factory = func(p metaheuristic.Params) (metaheuristic.Algorithm, error) {
			return metaheuristic.NewGenetic("tuned-ga", p)
		}
	case "ss":
		factory = func(p metaheuristic.Params) (metaheuristic.Algorithm, error) {
			return metaheuristic.NewScatterSearch("tuned-ss", p)
		}
	default:
		fatal(fmt.Errorf("unknown family %q (want ga or ss)", *mh))
	}

	space := tuning.Space{Dims: []tuning.Dimension{
		{Name: tuning.ParamPopulation, Values: []float64{8, 16, 32}},
		{Name: tuning.ParamImproveFraction, Values: []float64{0, 0.2, 1.0}},
		{Name: tuning.ParamImproveMoves, Values: []float64{2, 6}},
	}}
	obj := tuning.MetaheuristicObjective(problem, base, factory)
	opts := tuning.Options{Replications: *reps, Seed: *seed}

	fmt.Printf("tuning %s on %s (%d spots): %d configurations, method=%s\n",
		*mh, *dataset, *spots, space.Size(), *method)

	var results []tuning.Evaluated
	switch *method {
	case "grid":
		results, err = tuning.GridSearch(space, obj, opts)
	case "race":
		results, err = tuning.Race(space, obj, opts)
	default:
		err = fmt.Errorf("unknown method %q (want grid or race)", *method)
	}
	if err != nil {
		fatal(err)
	}

	total := 0
	for _, r := range results {
		total += len(r.Scores)
	}
	fmt.Printf("evaluations used: %d (exhaustive would use %d)\n\n", total, space.Size()**reps)
	fmt.Println("rank  mean energy    std  reps  configuration")
	for i, r := range results {
		if i >= 10 {
			fmt.Printf("  ... %d more\n", len(results)-i)
			break
		}
		fmt.Printf("  %2d  %11.3f %6.3f  %4d  %s\n", i+1, r.Mean, r.Std, len(r.Scores), r.Config)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vstune:", err)
	os.Exit(1)
}
