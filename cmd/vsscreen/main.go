// Command vsscreen runs a library screen: a set of ligands is docked
// against one receptor and ranked by best binding energy, with optional
// CSV output — the drug-discovery funnel the paper motivates.
//
// Usage:
//
//	vsscreen -dataset 2BSM -library 20
//	vsscreen -receptor rec.pdb -ligands a.pdb,b.pdb,c.pdb -csv out.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/report"
	"github.com/metascreen/metascreen/internal/surface"
)

func main() {
	dataset := flag.String("dataset", "", "receptor from a benchmark dataset (2BSM or 2BXG)")
	receptorPath := flag.String("receptor", "", "receptor PDB file (alternative to -dataset)")
	ligandPaths := flag.String("ligands", "", "comma-separated ligand PDB files")
	librarySize := flag.Int("library", 10, "size of the synthetic ligand library when -ligands is not given")
	spots := flag.Int("spots", 6, "surface spots per ligand job")
	mh := flag.String("mh", "M3", "metaheuristic (M1..M4)")
	mhScale := flag.Float64("mh-scale", 0.03, "metaheuristic budget scale")
	seed := flag.Uint64("seed", 7, "random seed")
	csvPath := flag.String("csv", "", "also write the ranking to this CSV file")
	flag.Parse()

	receptor, err := loadReceptor(*dataset, *receptorPath)
	if err != nil {
		fatal(err)
	}
	library, err := loadLibrary(*ligandPaths, *librarySize)
	if err != nil {
		fatal(err)
	}

	algf := func() (metaheuristic.Algorithm, error) {
		return metaheuristic.NewPaper(*mh, *mhScale)
	}
	fmt.Printf("screening %d ligands against %s (%d atoms) over %d spots with %s\n",
		len(library), receptor.Name, receptor.NumAtoms(), *spots, *mh)

	res, err := core.Screen(receptor, library,
		surface.Options{MaxSpots: *spots}, forcefield.Options{},
		algf, core.HostBackendFactory(core.HostConfig{Real: true}), *seed)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("done: %d scoring evaluations\n\nranking:\n", res.Evaluations)
	for i, e := range res.Ranking {
		fmt.Printf("  %2d. %-12s (%2d atoms)  %10.3f kcal/mol at spot %d\n",
			i+1, e.Ligand.Name, e.Ligand.NumAtoms(), e.Result.Best.Score, e.Result.Best.Spot)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := report.ScreenCSV(f, res); err != nil {
			fatal(err)
		}
		fmt.Printf("\nranking written to %s\n", *csvPath)
	}
}

func loadReceptor(dataset, path string) (*molecule.Molecule, error) {
	if dataset != "" {
		ds, err := core.DatasetByName(dataset)
		if err != nil {
			return nil, err
		}
		return ds.Receptor, nil
	}
	if path == "" {
		return nil, fmt.Errorf("need -dataset or -receptor")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return molecule.ReadPDB(f)
}

func loadLibrary(paths string, synthetic int) ([]*molecule.Molecule, error) {
	if paths == "" {
		if synthetic <= 0 {
			return nil, fmt.Errorf("library size must be positive")
		}
		return core.SyntheticLibrary(synthetic), nil
	}
	var lib []*molecule.Molecule
	for _, p := range strings.Split(paths, ",") {
		f, err := os.Open(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		m, err := molecule.ReadPDB(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		lib = append(lib, m)
	}
	return lib, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vsscreen:", err)
	os.Exit(1)
}
