// Command vsrun executes one real (force-field-evaluated) virtual-screening
// run and reports the best poses found per surface spot.
//
// Usage:
//
//	vsrun -dataset 2BSM -mh M3 -mh-scale 0.05
//	vsrun -receptor rec.pdb -ligand lig.pdb -spots 16 -mh M2
//	vsrun -dataset 2BSM -backend pool -machine Hertz -mode heterogeneous
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/metascreen/metascreen/internal/analysis"
	"github.com/metascreen/metascreen/internal/conformation"
	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/cudasim"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/obs"
	"github.com/metascreen/metascreen/internal/report"
	"github.com/metascreen/metascreen/internal/sched"
	"github.com/metascreen/metascreen/internal/surface"
	"github.com/metascreen/metascreen/internal/tables"
	"github.com/metascreen/metascreen/internal/trace"
)

func main() {
	dataset := flag.String("dataset", "", "benchmark dataset (2BSM or 2BXG)")
	receptorPath := flag.String("receptor", "", "receptor PDB file (alternative to -dataset)")
	ligandPath := flag.String("ligand", "", "ligand PDB file (alternative to -dataset)")
	mh := flag.String("mh", "M3", "metaheuristic: M1..M4, or sa/tabu/pso extensions")
	mhScale := flag.Float64("mh-scale", 0.05, "budget scale for the paper metaheuristics (full scale is hours of real compute)")
	spots := flag.Int("spots", 0, "number of surface spots (0 = receptorAtoms/100)")
	backendKind := flag.String("backend", "host", "backend: host or pool")
	machine := flag.String("machine", "Hertz", "pool backend: platform (Jupiter or Hertz)")
	mode := flag.String("mode", "heterogeneous", "pool backend: homogeneous, heterogeneous or dynamic")
	coulomb := flag.Bool("coulomb", false, "add the Coulomb term to the scoring function")
	seed := flag.Uint64("seed", 42, "random seed")
	top := flag.Int("top", 5, "number of best spots to print")
	gantt := flag.Bool("gantt", false, "pool backend: print a device timeline chart after the run")
	faults := flag.String("faults", "", `pool backend: inject device faults, e.g. "dev1:fail@0.5,dev0:throttle@0.2x" (fail@T / hang@T in simulated seconds, transient@RATE, throttle@Fx)`)
	multistart := flag.Int("multistart", 1, "independent stochastic executions; the best wins")
	flexible := flag.Bool("flexible", false, "dock the ligand flexibly (rotatable bonds become search dimensions)")
	budget := flag.Float64("budget", 0, "simulated-time deadline in seconds (0 = run to the End condition)")
	modes := flag.Float64("modes", 0, "cluster spot winners into binding modes at this RMSD cutoff in angstroms (0 = off)")
	historyPath := flag.String("history", "", "write the convergence history (generation, sim time, best) to this CSV file")
	traceOut := flag.String("trace-out", "", "write the run's span timeline as Chrome trace format to this file (load in Perfetto)")
	logLevel := flag.String("log-level", "warn", "log level: debug, info, warn or error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	flag.Parse()

	logger, err := obs.NewLogger(*logLevel, *logFormat, os.Stderr)
	if err != nil {
		fatal(err)
	}
	ctx := obs.NewContext(context.Background(), logger)

	rec, lig, err := loadMolecules(*dataset, *receptorPath, *ligandPath)
	if err != nil {
		fatal(err)
	}
	problem, err := core.NewProblem(rec, lig,
		surface.Options{MaxSpots: *spots},
		forcefield.Options{Coulomb: *coulomb})
	if err != nil {
		fatal(err)
	}

	if *flexible {
		dof := problem.EnableFlexibility()
		fmt.Printf("flexible docking: %d rotatable bonds\n", dof)
	}

	alg, err := pickAlgorithm(*mh, *mhScale)
	if err != nil {
		fatal(err)
	}

	var recorder *trace.Recorder
	if *traceOut != "" || (*gantt && *backendKind == "pool") {
		recorder = &trace.Recorder{}
		ctx = trace.NewContext(ctx, recorder)
	}
	backend, err := pickBackend(problem, *backendKind, *machine, *mode, *seed, *faults, recorder)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("screening %s (%d atoms) vs %s (%d atoms): %d spots, %s on %s\n",
		rec.Name, rec.NumAtoms(), lig.Name, lig.NumAtoms(),
		len(problem.Spots), alg.Name(), backend.Name())

	var res *core.Result
	if *multistart > 1 {
		ms, err := core.RunMultiStartCtx(ctx, problem,
			func() (metaheuristic.Algorithm, error) { return pickAlgorithm(*mh, *mhScale) },
			func(p *core.Problem) (core.Backend, error) {
				return pickBackend(p, *backendKind, *machine, *mode, *seed, *faults, nil)
			},
			*multistart, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("multi-start: %d independent executions, winner below\n", len(ms.Runs))
		res = ms.Best
	} else if *budget > 0 {
		res, err = core.RunBudgetCtx(ctx, problem, alg, backend, *seed, *budget)
		if err != nil {
			fatal(err)
		}
		if res.DeadlineHit {
			fmt.Printf("deadline of %.3fs (simulated) reached after %d generations\n",
				*budget, res.Generations)
		}
	} else {
		res, err = core.RunCtx(ctx, problem, alg, backend, *seed)
		if err != nil {
			fatal(err)
		}
	}

	fmt.Printf("done: %d generations, %d evaluations, %.2fs wall",
		res.Generations, res.Evaluations, res.WallSeconds)
	if res.SimulatedSeconds > 0 {
		fmt.Printf(", %.4fs simulated", res.SimulatedSeconds)
	}
	fmt.Println()
	if res.DeviceFaults > 0 || res.Resplits > 0 {
		fmt.Printf("fault recovery: %d device faults, %d retries, %d re-splits — run completed\n",
			res.DeviceFaults, res.SchedRetries, res.Resplits)
	}

	ranked := append([]core.SpotResult(nil), res.Spots...)
	sort.Slice(ranked, func(i, j int) bool {
		return ranked[i].Best.Score < ranked[j].Best.Score
	})
	n := *top
	if n > len(ranked) {
		n = len(ranked)
	}
	fmt.Printf("best %d spots:\n", n)
	for i := 0; i < n; i++ {
		sr := ranked[i]
		fmt.Printf("  spot %2d  score %10.3f kcal/mol  center %v  pose %v\n",
			sr.Spot.ID, sr.Best.Score, sr.Spot.Center, sr.Best.Translation)
	}
	fmt.Printf("overall best: spot %d, %.3f kcal/mol\n", res.Best.Spot, res.Best.Score)

	if *modes > 0 {
		poses := make([]conformation.Conformation, 0, len(res.Spots))
		for _, sr := range res.Spots {
			poses = append(poses, sr.Best)
		}
		clusters, err := analysis.ClusterModes(problem.TorsionSet(), problem.LigandPositions(), poses, *modes)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n%d distinct binding modes at %.1f A RMSD:\n", len(clusters), *modes)
		for i, m := range clusters {
			fmt.Printf("  mode %d: %d poses, best %.3f kcal/mol (spot %d), mean %.3f\n",
				i+1, m.Members, m.Representative.Score, m.Representative.Spot, m.MeanScore)
		}
	}

	if res.EnergyJoules > 0 {
		fmt.Printf("modeled energy: %.1f J\n", res.EnergyJoules)
	}

	if *historyPath != "" {
		f, err := os.Create(*historyPath)
		if err != nil {
			fatal(err)
		}
		werr := report.HistoryCSV(f, res)
		cerr := f.Close()
		if werr != nil {
			fatal(werr)
		}
		if cerr != nil {
			fatal(cerr)
		}
		fmt.Printf("convergence history written to %s\n", *historyPath)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		werr := recorder.WriteChrome(f)
		cerr := f.Close()
		if werr != nil {
			fatal(werr)
		}
		if cerr != nil {
			fatal(cerr)
		}
		fmt.Printf("trace written to %s (load in Perfetto or chrome://tracing)\n", *traceOut)
	}

	if *gantt && recorder != nil && recorder.Len() > 0 {
		fmt.Println("\ndevice timeline (w=warmup, s=scoring, i=improve, h/d=transfers):")
		if err := recorder.WriteGantt(os.Stdout, 100); err != nil {
			fatal(err)
		}
		for i, u := range recorder.Utilization() {
			fmt.Printf("  device %d utilization: %.0f%%\n", i, 100*u)
		}
	}
}

func loadMolecules(dataset, receptorPath, ligandPath string) (*molecule.Molecule, *molecule.Molecule, error) {
	if dataset != "" {
		ds, err := core.DatasetByName(dataset)
		if err != nil {
			return nil, nil, err
		}
		return ds.Receptor, ds.Ligand, nil
	}
	if receptorPath == "" || ligandPath == "" {
		return nil, nil, fmt.Errorf("need -dataset, or both -receptor and -ligand")
	}
	rec, err := readPDB(receptorPath)
	if err != nil {
		return nil, nil, err
	}
	lig, err := readPDB(ligandPath)
	if err != nil {
		return nil, nil, err
	}
	return rec, lig, nil
}

func readPDB(path string) (*molecule.Molecule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return molecule.ReadPDB(f)
}

func pickAlgorithm(name string, scale float64) (metaheuristic.Algorithm, error) {
	switch name {
	case "M1", "M2", "M3", "M4":
		return metaheuristic.NewPaper(name, scale)
	case "sa":
		return metaheuristic.NewSimulatedAnnealing("sa", extensionParams(scale))
	case "tabu":
		return metaheuristic.NewTabuSearch("tabu", extensionParams(scale))
	case "pso":
		return metaheuristic.NewParticleSwarm("pso", extensionParams(scale))
	}
	return nil, fmt.Errorf("unknown metaheuristic %q", name)
}

func extensionParams(scale float64) metaheuristic.Params {
	gens := int(200*scale + 0.5)
	if gens < 5 {
		gens = 5
	}
	return metaheuristic.Params{
		PopulationPerSpot: 32,
		SelectFraction:    1,
		Generations:       gens,
	}
}

func pickBackend(p *core.Problem, kind, machineName, modeName string, seed uint64, faultSpec string, rec *trace.Recorder) (core.Backend, error) {
	switch kind {
	case "host":
		if faultSpec != "" {
			return nil, fmt.Errorf("-faults requires -backend pool (the host backend has no devices)")
		}
		return core.NewHostBackend(p, core.HostConfig{Real: true})
	case "pool":
		m, err := tables.MachineByName(machineName)
		if err != nil {
			return nil, err
		}
		var mode sched.Mode
		switch modeName {
		case "homogeneous":
			mode = sched.Homogeneous
		case "heterogeneous":
			mode = sched.Heterogeneous
		case "dynamic":
			mode = sched.Dynamic
		default:
			return nil, fmt.Errorf("unknown mode %q", modeName)
		}
		plans, err := parseFaults(faultSpec, len(m.GPUs), seed)
		if err != nil {
			return nil, err
		}
		return core.NewPoolBackend(p, core.PoolConfig{
			Real:   true,
			Specs:  m.GPUs,
			Mode:   mode,
			Seed:   seed,
			Trace:  rec,
			Faults: plans,
		})
	}
	return nil, fmt.Errorf("unknown backend %q", kind)
}

// parseFaults parses the -faults DSL (see cudasim.ParseFaultPlans for the
// grammar; the parser is shared with the service's ScreenRequest.Faults).
func parseFaults(spec string, devices int, seed uint64) ([]cudasim.FaultPlan, error) {
	return cudasim.ParseFaultPlans(spec, devices, seed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vsrun:", err)
	os.Exit(1)
}
