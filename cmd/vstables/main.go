// Command vstables regenerates the result tables of the paper (Tables 6-9)
// through the modeled full-scale workload, printing measured times,
// speed-ups and the paper-reported speed-ups for comparison.
//
// Usage:
//
//	vstables               # all four tables at paper scale
//	vstables -table 8      # one table
//	vstables -scale 0.25   # reduced workload
//	vstables -config       # print the configuration tables 4 and 5
//	vstables -check        # exit non-zero if a qualitative shape check fails
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/metascreen/metascreen/internal/report"
	"github.com/metascreen/metascreen/internal/tables"
)

func main() {
	table := flag.Int("table", 0, "paper table number (6-9); 0 runs all")
	scale := flag.Float64("scale", 1, "workload scale in (0, 1]; 1 is paper scale")
	seed := flag.Uint64("seed", 2016, "random seed")
	noise := flag.Float64("noise", 0, "warm-up measurement noise amplitude (e.g. 0.05)")
	config := flag.Bool("config", false, "print the paper's configuration tables 4 and 5 and exit")
	check := flag.Bool("check", false, "run the qualitative shape checks and report pass/fail")
	energy := flag.Bool("energy", false, "also print the modeled energy comparison per table")
	format := flag.String("format", "text", "output format: text, csv or json")
	deadline := flag.Float64("deadline", 0, "run the deadline-quality experiment with this simulated budget in seconds")
	flag.Parse()

	if *deadline > 0 {
		for _, m := range []tables.Machine{tables.Jupiter(), tables.Hertz()} {
			rep, err := tables.RunDeadline(m, "2BSM", *deadline,
				tables.Config{Scale: *scale, Seed: *seed, NoiseAmp: *noise})
			if err != nil {
				fatal(err)
			}
			if err := rep.Write(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		return
	}

	if *config {
		if err := tables.WriteConfig(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	var exps []tables.Experiment
	if *table == 0 {
		exps = tables.Experiments()
	} else {
		exp, err := tables.ExperimentByNumber(*table)
		if err != nil {
			fatal(err)
		}
		exps = []tables.Experiment{exp}
	}

	cfg := tables.Config{Scale: *scale, Seed: *seed, NoiseAmp: *noise}
	allPass := true
	for _, exp := range exps {
		tab, err := tables.Run(exp, cfg)
		if err != nil {
			fatal(err)
		}
		if err := report.WriteTable(os.Stdout, tab, report.Format(*format)); err != nil {
			fatal(err)
		}
		if *energy && report.Format(*format) == report.FormatText {
			if err := tab.WriteEnergy(os.Stdout); err != nil {
				fatal(err)
			}
		}
		if *check {
			rep := tables.CheckShape(tab)
			for _, c := range rep.Checks {
				status := "PASS"
				if !c.Pass {
					status = "FAIL"
					allPass = false
				}
				fmt.Printf("  [%s] %-28s %s\n", status, c.Name, c.Info)
			}
		}
		fmt.Println()
	}
	if *check && !allPass {
		fmt.Fprintln(os.Stderr, "vstables: shape checks failed")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vstables:", err)
	os.Exit(1)
}
