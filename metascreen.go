// Package metascreen is the public API of the metascreen library: a Go
// reproduction of "Enhancing Metaheuristic-based Virtual Screening Methods
// on Massively Parallel and Heterogeneous Systems" (PMAM/PPoPP 2016).
//
// The package is a curated facade over the implementation packages under
// internal/. The typical flow:
//
//	ds := metascreen.Dataset2BSM()
//	problem, _ := metascreen.NewProblem(ds.Receptor, ds.Ligand,
//	        metascreen.SpotOptions{MaxSpots: 8}, metascreen.ForceFieldOptions{})
//	alg, _ := metascreen.NewPaperMetaheuristic("M3", 0.05)
//	backend, _ := metascreen.NewHostBackend(problem, metascreen.HostConfig{Real: true})
//	res, _ := metascreen.Run(problem, alg, backend, 42)
//	fmt.Println(res.Best)
//
// To schedule over a simulated heterogeneous multi-GPU node (the paper's
// contribution), swap the backend:
//
//	backend, _ := metascreen.NewPoolBackend(problem, metascreen.PoolConfig{
//	        Specs: []metascreen.DeviceSpec{metascreen.TeslaK40c, metascreen.GTX580},
//	        Mode:  metascreen.Heterogeneous,
//	        Real:  true,
//	})
//
// The paper's result tables regenerate through RunTable; see also
// cmd/vstables and EXPERIMENTS.md.
package metascreen

import (
	"context"

	"github.com/metascreen/metascreen/internal/analysis"
	"github.com/metascreen/metascreen/internal/cluster"
	"github.com/metascreen/metascreen/internal/conformation"
	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/cudasim"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/sched"
	"github.com/metascreen/metascreen/internal/service"
	"github.com/metascreen/metascreen/internal/surface"
	"github.com/metascreen/metascreen/internal/tables"
)

// --- molecules and problems ---------------------------------------------

// Molecule is a receptor protein or small-molecule ligand.
type Molecule = molecule.Molecule

// Atom is one atom of a molecule.
type Atom = molecule.Atom

// Dataset is a named receptor-ligand benchmark pair.
type Dataset = core.Dataset

// Dataset2BSM returns the paper's 2BSM benchmark (synthetic stand-in with
// the published atom counts: receptor 3264, ligand 45).
func Dataset2BSM() Dataset { return core.Dataset2BSM() }

// Dataset2BXG returns the paper's 2BXG benchmark (receptor 8609, ligand 32).
func Dataset2BXG() Dataset { return core.Dataset2BXG() }

// SpotOptions configures surface-spot detection.
type SpotOptions = surface.Options

// Spot is one independent docking region on the receptor surface.
type Spot = surface.Spot

// ForceFieldOptions selects scoring terms (Lennard-Jones always; Coulomb
// optionally).
type ForceFieldOptions = forcefield.Options

// Problem is one docking problem: receptor, detected spots, and ligand.
type Problem = core.Problem

// NewProblem validates the molecules, detects surface spots and prepares
// scoring topologies.
func NewProblem(receptor, ligand *Molecule, spots SpotOptions, ff ForceFieldOptions) (*Problem, error) {
	return core.NewProblem(receptor, ligand, spots, ff)
}

// NewProblemFromDataset builds the problem for a benchmark dataset with
// the paper's default spot scaling (receptorAtoms/100).
func NewProblemFromDataset(d Dataset, ff ForceFieldOptions) (*Problem, error) {
	return core.NewProblemFromDataset(d, ff)
}

// --- metaheuristics -------------------------------------------------------

// Metaheuristic is an algorithm filling the paper's six-function template.
type Metaheuristic = metaheuristic.Algorithm

// MetaheuristicParams are the template parameters (population, selection
// and improvement fractions, local-search moves, generations).
type MetaheuristicParams = metaheuristic.Params

// NewPaperMetaheuristic constructs one of the paper's four metaheuristics
// ("M1".."M4") at the given budget scale (1 = paper scale).
func NewPaperMetaheuristic(name string, scale float64) (Metaheuristic, error) {
	return metaheuristic.NewPaper(name, scale)
}

// NewGenetic, NewScatterSearch, NewLocalSearch, NewSimulatedAnnealing,
// NewTabuSearch, NewParticleSwarm, NewVariableNeighborhood, NewGRASP and
// NewAnnealedGenetic build the individual algorithm families.
var (
	NewGenetic              = metaheuristic.NewGenetic
	NewScatterSearch        = metaheuristic.NewScatterSearch
	NewLocalSearch          = metaheuristic.NewLocalSearch
	NewSimulatedAnnealing   = metaheuristic.NewSimulatedAnnealing
	NewTabuSearch           = metaheuristic.NewTabuSearch
	NewParticleSwarm        = metaheuristic.NewParticleSwarm
	NewVariableNeighborhood = metaheuristic.NewVariableNeighborhood
	NewGRASP                = metaheuristic.NewGRASP
	NewAnnealedGenetic      = metaheuristic.NewAnnealedGenetic
)

// --- backends and execution ----------------------------------------------

// Backend executes the evaluation work of a run.
type Backend = core.Backend

// HostConfig configures the multicore baseline backend.
type HostConfig = core.HostConfig

// PoolConfig configures the simulated multi-GPU backend.
type PoolConfig = core.PoolConfig

// NewHostBackend builds the multicore backend.
func NewHostBackend(p *Problem, cfg HostConfig) (Backend, error) {
	return core.NewHostBackend(p, cfg)
}

// NewPoolBackend builds the simulated multi-GPU backend, running the
// paper's warm-up phase lazily when the mode is Heterogeneous.
func NewPoolBackend(p *Problem, cfg PoolConfig) (Backend, error) {
	return core.NewPoolBackend(p, cfg)
}

// Mode selects the partitioning strategy of a pool backend.
type Mode = sched.Mode

// Partitioning strategies.
const (
	// Homogeneous is the equal split (the paper's baseline computation).
	Homogeneous = sched.Homogeneous
	// Heterogeneous splits proportionally to warm-up throughput (the
	// paper's contribution).
	Heterogeneous = sched.Heterogeneous
	// Dynamic self-schedules chunks cooperatively.
	Dynamic = sched.Dynamic
)

// Conformation is one candidate solution: a (possibly flexible) ligand
// pose at a surface spot.
type Conformation = conformation.Conformation

// Result is the outcome of one screening run.
type Result = core.Result

// Run executes one virtual-screening run; same inputs and seed always give
// the same result.
func Run(p *Problem, alg Metaheuristic, backend Backend, seed uint64) (*Result, error) {
	return core.Run(p, alg, backend, seed)
}

// RunCtx is Run with cancellation: the run aborts between metaheuristic
// generations as soon as ctx is cancelled or its deadline passes.
func RunCtx(ctx context.Context, p *Problem, alg Metaheuristic, backend Backend, seed uint64) (*Result, error) {
	return core.RunCtx(ctx, p, alg, backend, seed)
}

// RunBudget executes a run under a simulated-time deadline.
func RunBudget(p *Problem, alg Metaheuristic, backend Backend, seed uint64, budgetSeconds float64) (*Result, error) {
	return core.RunBudget(p, alg, backend, seed, budgetSeconds)
}

// RunBudgetCtx is RunBudget with cancellation; the simulated-time budget
// and ctx's real-time deadline are independent stop conditions.
func RunBudgetCtx(ctx context.Context, p *Problem, alg Metaheuristic, backend Backend, seed uint64, budgetSeconds float64) (*Result, error) {
	return core.RunBudgetCtx(ctx, p, alg, backend, seed, budgetSeconds)
}

// ScreenResult ranks a ligand library against one receptor.
type ScreenResult = core.ScreenResult

// Screen docks every ligand of a library and returns the ranking, one
// worker goroutine per CPU. Equal-energy ligands rank by name, so the
// ranking never depends on library order.
func Screen(receptor *Molecule, library []*Molecule, spots SpotOptions, ff ForceFieldOptions,
	algf core.AlgorithmFactory, backf core.BackendFactory, seed uint64) (*ScreenResult, error) {
	return core.Screen(receptor, library, spots, ff, algf, backf, seed)
}

// ScreenCtx is Screen with cancellation and an explicit worker bound
// (0 = one per CPU). Every worker count returns a byte-identical ranking:
// each ligand runs on its own seed lane keyed by library index.
func ScreenCtx(ctx context.Context, receptor *Molecule, library []*Molecule, spots SpotOptions, ff ForceFieldOptions,
	algf core.AlgorithmFactory, backf core.BackendFactory, seed uint64, workers int) (*ScreenResult, error) {
	return core.ScreenCtx(ctx, receptor, library, spots, ff, algf, backf, seed, workers)
}

// SyntheticLibrary returns n deterministic synthetic ligands with varied
// drug-like sizes — the workload generator shared by cmd/vsscreen and the
// screening service.
var SyntheticLibrary = core.SyntheticLibrary

// HostBackendFactory and PoolBackendFactory adapt configurations to the
// factory signature Screen and RunMultiStart take.
var (
	HostBackendFactory = core.HostBackendFactory
	PoolBackendFactory = core.PoolBackendFactory
)

// RunMultiStart executes independent stochastic runs and picks the winner
// (the paper's independent-executions scheme); RunMultiStartCtx adds
// cancellation.
var (
	RunMultiStart    = core.RunMultiStart
	RunMultiStartCtx = core.RunMultiStartCtx
)

// --- simulated hardware ----------------------------------------------------

// DeviceSpec describes a simulated GPU model.
type DeviceSpec = cudasim.DeviceSpec

// The paper's four GPU models (its Tables 2 and 3).
var (
	GTX590     = cudasim.GTX590
	TeslaC2075 = cudasim.TeslaC2075
	TeslaK40c  = cudasim.TeslaK40c
	GTX580     = cudasim.GTX580
)

// DeviceCatalogue lists every built-in GPU model.
func DeviceCatalogue() []DeviceSpec { return cudasim.Catalogue() }

// Machine describes one of the paper's experimental platforms.
type Machine = tables.Machine

// Jupiter and Hertz return the paper's two platforms.
func Jupiter() Machine { return tables.Jupiter() }

// Hertz returns the paper's Hertz platform (Tesla K40c + GTX 580).
func Hertz() Machine { return tables.Hertz() }

// --- experiments ------------------------------------------------------------

// Table is one regenerated result table of the paper.
type Table = tables.Table

// TableConfig tunes a table run.
type TableConfig = tables.Config

// RunTable regenerates one of the paper's result tables (6-9).
func RunTable(number int, cfg TableConfig) (*Table, error) {
	exp, err := tables.ExperimentByNumber(number)
	if err != nil {
		return nil, err
	}
	return tables.Run(exp, cfg)
}

// --- analysis and clustering -------------------------------------------------

// BindingMode is one cluster of poses.
type BindingMode = analysis.Mode

// ClusterModes groups poses into distinct binding modes by RMSD.
var ClusterModes = analysis.ClusterModes

// PoseRMSD is the RMSD between two poses of the same ligand.
var PoseRMSD = analysis.PoseRMSD

// --- screening service ------------------------------------------------------

// ServiceConfig sizes the screening service (workers, queue bound,
// per-job ligand parallelism).
type ServiceConfig = service.Config

// ScreeningService runs screens as jobs: a bounded queue, a parallel
// worker pool over the engine, an HTTP JSON API (Handler) and Prometheus
// metrics. See cmd/vsserved for the ready-made server binary.
type ScreeningService = service.Service

// ScreenRequest describes one service screening job.
type ScreenRequest = service.ScreenRequest

// JobView is a job snapshot as returned by the service API.
type JobView = service.JobView

// JobState is a job's lifecycle position ("queued", "running", "done",
// "failed", "cancelled").
type JobState = service.JobState

// NewService builds a screening service and starts its worker pool; stop
// it with its Shutdown method. With ServiceConfig.DataDir set, the service
// first replays the journal in that directory and resumes jobs that were
// interrupted by a crash; the error reports an unusable data dir.
func NewService(cfg ServiceConfig) (*ScreeningService, error) { return service.New(cfg) }

// ErrQueueFull is the service's admission-control rejection (HTTP 429 on
// the API).
var ErrQueueFull = service.ErrQueueFull

// --- multi-node -----------------------------------------------------------------

// ClusterConfig describes a simulated multi-node cluster.
type ClusterConfig = cluster.Config

// ClusterResult is a whole-cluster run.
type ClusterResult = cluster.Result

// RunCluster distributes the screening over a simulated message-passing
// cluster (the paper's future-work platform).
func RunCluster(p *Problem, metaheuristicName string, scale float64, cfg ClusterConfig, seed uint64) (*ClusterResult, error) {
	return cluster.Run(p, metaheuristicName, scale, cfg, seed)
}
