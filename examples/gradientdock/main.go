// Gradient docking: compares the paper's stochastic local search with
// rigid-body gradient descent on analytic Lennard-Jones forces — the kind
// of scoring-function exploration the paper's conclusions anticipate. Both
// improvers run the same metaheuristic on the same problem with the same
// move budget; gradient descent extracts more progress per evaluation.
//
//	go run ./examples/gradientdock
package main

import (
	"fmt"
	"log"

	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/surface"
)

func main() {
	rec := molecule.SyntheticProtein("receptor", 1500, 101)
	lig := molecule.SyntheticLigand("ligand", 24, 102)
	problem, err := core.NewProblem(rec, lig, surface.Options{MaxSpots: 6}, forcefield.Options{})
	if err != nil {
		log.Fatal(err)
	}

	params := metaheuristic.Params{
		PopulationPerSpot: 24,
		SelectFraction:    1,
		ImproveFraction:   1,
		ImproveMoves:      8,
		Generations:       10,
	}

	fmt.Printf("docking %s (%d atoms) at %d spots, %d generations, %d local-search moves\n\n",
		lig.Name, lig.NumAtoms(), len(problem.Spots), params.Generations, params.ImproveMoves)

	for _, improver := range []string{"stochastic", "gradient"} {
		alg, err := metaheuristic.NewScatterSearch("ss", params)
		if err != nil {
			log.Fatal(err)
		}
		backend, err := core.NewHostBackend(problem, core.HostConfig{
			Real:     true,
			Improver: improver,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Run(problem, alg, backend, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s improver: best %9.3f kcal/mol (spot %d), %d evaluations, %.2fs wall\n",
			improver, res.Best.Score, res.Best.Spot, res.Evaluations, res.WallSeconds)
	}

	fmt.Println("\n(gradient descent follows the analytic force/torque of the pose;")
	fmt.Println(" stochastic search is the paper's random perturbation moves)")
}
