// Quickstart: dock one ligand against one receptor over its whole surface
// and print the best binding poses.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/surface"
)

func main() {
	// The paper's 2BSM benchmark: a 3264-atom receptor and 45-atom ligand
	// (synthetic stand-ins with the published sizes).
	ds := core.Dataset2BSM()

	// Divide the receptor surface into 8 independent spots and prepare
	// Lennard-Jones scoring.
	problem, err := core.NewProblem(ds.Receptor, ds.Ligand,
		surface.Options{MaxSpots: 8}, forcefield.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// M3: scatter search with light local search, at 5% of the paper's
	// budget so the example finishes in seconds.
	alg, err := metaheuristic.NewPaper("M3", 0.05)
	if err != nil {
		log.Fatal(err)
	}

	// Evaluate for real on the host.
	backend, err := core.NewHostBackend(problem, core.HostConfig{Real: true})
	if err != nil {
		log.Fatal(err)
	}

	res, err := core.Run(problem, alg, backend, 42)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("screened %d spots in %d generations (%d scoring evaluations)\n",
		len(res.Spots), res.Generations, res.Evaluations)

	ranked := append([]core.SpotResult(nil), res.Spots...)
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].Best.Score < ranked[j].Best.Score })
	fmt.Println("top binding sites:")
	for i := 0; i < 3 && i < len(ranked); i++ {
		sr := ranked[i]
		fmt.Printf("  spot %d: %.3f kcal/mol at %v\n", sr.Spot.ID, sr.Best.Score, sr.Best.Translation)
	}
	fmt.Printf("overall best: spot %d with %.3f kcal/mol\n", res.Best.Spot, res.Best.Score)
}
