// Ligand-database screening: the drug-discovery workload that motivates the
// paper. A library of candidate ligands is screened against one receptor;
// each ligand is docked at every surface spot and the library is ranked by
// best binding energy — the computational funnel that selects compounds for
// in-vitro follow-up.
//
//	go run ./examples/liganddb
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/surface"
)

const (
	librarySize = 12
	spots       = 6
)

type hit struct {
	name  string
	score float64
	spot  int
}

func main() {
	receptor := core.Dataset2BSM().Receptor

	// A small synthetic compound library with varied sizes (drug-like
	// molecules of 20-50 heavy atoms).
	var library []*molecule.Molecule
	for i := 0; i < librarySize; i++ {
		atoms := 20 + (i*7)%31
		library = append(library,
			molecule.SyntheticLigand(fmt.Sprintf("LIG-%03d", i), atoms, 9000+uint64(i)))
	}

	alg, err := metaheuristic.NewPaper("M3", 0.03)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("screening %d ligands against %s over %d surface spots\n",
		len(library), receptor.Name, spots)

	var hits []hit
	for _, lig := range library {
		problem, err := core.NewProblem(receptor, lig,
			surface.Options{MaxSpots: spots}, forcefield.Options{})
		if err != nil {
			log.Fatal(err)
		}
		backend, err := core.NewHostBackend(problem, core.HostConfig{Real: true})
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Run(problem, alg, backend, 7)
		if err != nil {
			log.Fatal(err)
		}
		hits = append(hits, hit{name: lig.Name, score: res.Best.Score, spot: res.Best.Spot})
		fmt.Printf("  %s (%2d atoms): best %8.3f kcal/mol at spot %d\n",
			lig.Name, lig.NumAtoms(), res.Best.Score, res.Best.Spot)
	}

	sort.Slice(hits, func(i, j int) bool { return hits[i].score < hits[j].score })
	fmt.Println("\nranking (most promising first):")
	for rank, h := range hits {
		fmt.Printf("  %2d. %s  %8.3f kcal/mol (spot %d)\n", rank+1, h.name, h.score, h.spot)
	}
}
