// Deadline screening: the paper's real-time scenario — "stochastic
// behaviors where real-time constraints must be fulfilled". The same
// metaheuristic runs under the same simulated deadline on the homogeneous
// and heterogeneous splits of a mixed-GPU node; better scheduling buys
// more generations, and the convergence curves show what those extra
// generations are worth.
//
//	go run ./examples/deadline
package main

import (
	"fmt"
	"log"

	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/cudasim"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/report"
	"github.com/metascreen/metascreen/internal/sched"
)

func main() {
	problem, err := core.NewProblemFromDataset(core.Dataset2BSM(), forcefield.Options{})
	if err != nil {
		log.Fatal(err)
	}
	specs := []cudasim.DeviceSpec{cudasim.TeslaK40c, cudasim.GTX580}
	const budget = 0.75 // simulated seconds

	fmt.Printf("deadline: %.2f simulated seconds of M1 on K40c + GTX580 (%d spots)\n\n",
		budget, len(problem.Spots))

	for _, mode := range []sched.Mode{sched.Homogeneous, sched.Heterogeneous} {
		alg, err := metaheuristic.NewPaper("M1", 0.5)
		if err != nil {
			log.Fatal(err)
		}
		backend, err := core.NewPoolBackend(problem, core.PoolConfig{
			Specs: specs,
			Mode:  mode,
			Seed:  1,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.RunBudget(problem, alg, backend, 1, budget)
		if err != nil {
			log.Fatal(err)
		}
		scores := make([]float64, len(res.History))
		for i, pt := range res.History {
			scores[i] = pt.Best
		}
		fmt.Printf("%-14s %4d generations, best %9.3f   %s\n",
			mode, res.Generations, res.Best.Score, report.Sparkline(scores, 48))
	}
	fmt.Println("\n(taller bars = better best-so-far; the heterogeneous split packs more")
	fmt.Println(" generations — and therefore more progress — into the same deadline)")
}
