// Cluster scaling: the paper's future-work scenario — several
// multicore+multiGPU nodes cooperating through message passing. Spots are
// distributed across simulated nodes and the makespan is measured as the
// node count grows.
//
//	go run ./examples/clusterscale
package main

import (
	"fmt"
	"log"

	"github.com/metascreen/metascreen/internal/cluster"
	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/cudasim"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/sched"
)

func main() {
	// The larger 2BXG benchmark (86 spots) gives the cluster something to
	// chew on.
	problem, err := core.NewProblemFromDataset(core.Dataset2BXG(), forcefield.Options{})
	if err != nil {
		log.Fatal(err)
	}
	node := []cudasim.DeviceSpec{cudasim.TeslaK40c, cudasim.GTX580}

	fmt.Printf("distributing %d spots of 2BXG across Hertz-like nodes (M3, 1/4 budget):\n",
		len(problem.Spots))
	fmt.Println("  nodes  compute(s)  network(s)  makespan(s)  speed-up  efficiency")

	var t1 float64
	for _, nodes := range []int{1, 2, 4, 8} {
		res, err := cluster.Run(problem, "M3", 0.25, cluster.Config{
			Nodes:       nodes,
			GPUsPerNode: node,
			Mode:        sched.Heterogeneous,
		}, 1)
		if err != nil {
			log.Fatal(err)
		}
		if nodes == 1 {
			t1 = res.SimulatedSeconds
		}
		speedup := t1 / res.SimulatedSeconds
		fmt.Printf("  %5d  %10.3f  %10.6f  %11.3f  %8.2fx  %9.1f%%\n",
			nodes, res.ComputeSeconds, res.NetworkSeconds, res.SimulatedSeconds,
			speedup, 100*speedup/float64(nodes))
	}
	fmt.Println("\n(spots are independent sub-problems, so scaling is near-linear until")
	fmt.Println(" the per-node spot count gets too small to fill the GPUs)")
}
