// Heterogeneous scheduling walkthrough: shows the paper's warm-up phase
// and Percent factor (its equation 1) on a mixed-GPU node, then compares
// the homogeneous, heterogeneous and dynamic partitioning strategies on
// the same workload.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/cudasim"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/sched"
)

func main() {
	// A deliberately imbalanced node: one Kepler K40c next to one Fermi
	// GTX 580 (the paper's Hertz platform) plus a GTX 980 for extra
	// spread.
	specs := []cudasim.DeviceSpec{cudasim.TeslaK40c, cudasim.GTX580}

	// Step 1: the warm-up phase, directly through the scheduler. Each
	// device runs a few iterations of the scoring kernel; Percent is
	// time(device)/time(slowest).
	ctx, err := cudasim.NewContext(specs...)
	if err != nil {
		log.Fatal(err)
	}
	pool := sched.NewPool(ctx)
	probe := cudasim.ScoringLaunch{
		Kind:                 cudasim.KernelScoring,
		Conformations:        1024,
		PairsPerConformation: core.Dataset2BSM().Receptor.NumAtoms() * 45,
	}
	warm := pool.Warmup(probe, 8, 0.05, 1)
	fmt.Println("warm-up phase (paper eq. 1):")
	for i, spec := range specs {
		fmt.Printf("  %-16s time %.4fs  Percent %.3f  workload share %.1f%%\n",
			spec.Name, warm.Times[i], warm.Percent[i], 100*warm.Weights[i])
	}

	// Step 2: run the same screening under each partitioning mode and
	// compare modeled execution times.
	problem, err := core.NewProblemFromDataset(core.Dataset2BSM(), forcefield.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscreening %d spots with M2 at 60%% of the paper budget:\n", len(problem.Spots))

	var base float64
	for _, mode := range []sched.Mode{sched.Homogeneous, sched.Heterogeneous, sched.Dynamic} {
		alg, err := metaheuristic.NewPaper("M2", 0.6)
		if err != nil {
			log.Fatal(err)
		}
		backend, err := core.NewPoolBackend(problem, core.PoolConfig{
			Specs: specs,
			Mode:  mode,
			Seed:  1,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Run(problem, alg, backend, 1)
		if err != nil {
			log.Fatal(err)
		}
		if mode == sched.Homogeneous {
			base = res.SimulatedSeconds
		}
		fmt.Printf("  %-14s %8.3fs simulated   speed-up vs homogeneous %.2fx\n",
			mode, res.SimulatedSeconds, base/res.SimulatedSeconds)
	}
}
