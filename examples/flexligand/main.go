// Flexible-ligand docking: the ligand's rotatable bonds become search
// dimensions alongside position and orientation — the richer conformational
// model the paper's future work points toward. Rigid and flexible searches
// run on the same problem with the same budget.
//
//	go run ./examples/flexligand
package main

import (
	"fmt"
	"log"

	"github.com/metascreen/metascreen/internal/core"
	"github.com/metascreen/metascreen/internal/forcefield"
	"github.com/metascreen/metascreen/internal/metaheuristic"
	"github.com/metascreen/metascreen/internal/molecule"
	"github.com/metascreen/metascreen/internal/surface"
)

func main() {
	rec := molecule.SyntheticProtein("receptor", 1200, 201)
	lig := molecule.SyntheticLigand("ligand", 28, 202)

	run := func(flexible bool) (*core.Result, int) {
		problem, err := core.NewProblem(rec, lig, surface.Options{MaxSpots: 5}, forcefield.Options{})
		if err != nil {
			log.Fatal(err)
		}
		dof := 0
		if flexible {
			dof = problem.EnableFlexibility()
		}
		alg, err := metaheuristic.NewScatterSearch("ss", metaheuristic.Params{
			PopulationPerSpot: 24,
			SelectFraction:    1,
			ImproveFraction:   1,
			ImproveMoves:      6,
			Generations:       12,
		})
		if err != nil {
			log.Fatal(err)
		}
		backend, err := core.NewHostBackend(problem, core.HostConfig{Real: true})
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Run(problem, alg, backend, 31)
		if err != nil {
			log.Fatal(err)
		}
		return res, dof
	}

	rigid, _ := run(false)
	flex, dof := run(true)

	fmt.Printf("docking %s (%d atoms) against %s (%d atoms), 5 spots\n\n",
		lig.Name, lig.NumAtoms(), rec.Name, rec.NumAtoms())
	fmt.Printf("rigid search    (6 DoF):       best %9.3f kcal/mol at spot %d\n",
		rigid.Best.Score, rigid.Best.Spot)
	fmt.Printf("flexible search (6+%d DoF):     best %9.3f kcal/mol at spot %d\n",
		dof, flex.Best.Score, flex.Best.Spot)
	fmt.Printf("\nthe flexible pose bends %d rotatable bonds; first angles:", dof)
	for i, a := range flex.Best.Torsions {
		if i >= 5 {
			fmt.Print(" ...")
			break
		}
		fmt.Printf(" %+.2f", a)
	}
	fmt.Println(" rad")
}
