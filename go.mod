module github.com/metascreen/metascreen

go 1.22
